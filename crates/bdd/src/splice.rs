//! Verdict splicing for destination-scoped incremental verification.
//!
//! An incremental DPV pass recomputes verdicts only over a *scoped*
//! packet space (the destinations a RIB delta can actually perturb);
//! the full-space verdict is then reassembled by surgery:
//!
//! ```text
//! full = (baseline ∧ ¬scope) ∨ recomputed
//! ```
//!
//! Outside the scope the baseline is still valid by construction, and
//! inside it the fresh result wins. The identity distributes over
//! disjunction, so per-worker splices OR-merge at the controller into
//! exactly the verdict a cold full-space pass would have produced.
//!
//! A [`Splicer`] is built once per scope predicate: it memoizes
//! `¬scope` (every splice against the same scope reuses the negation)
//! and counts the splice operations performed so callers can report
//! honest `dpv.scoped.splice_ops` numbers.

use crate::{Bdd, BddManager};

/// Splices scoped recomputations into full-space baselines against one
/// fixed scope predicate. Create one per `(manager, scope)` pair; the
/// negated scope is computed once in [`Splicer::new`] and reused.
#[derive(Debug, Clone)]
pub struct Splicer {
    scope: Bdd,
    not_scope: Bdd,
    ops: u64,
}

impl Splicer {
    /// A splicer for `scope`, memoizing `¬scope` up front.
    pub fn new(m: &mut BddManager, scope: Bdd) -> Splicer {
        let not_scope = m.not(scope);
        Splicer {
            scope,
            not_scope,
            ops: 0,
        }
    }

    /// The scope predicate this splicer was built for.
    pub fn scope(&self) -> Bdd {
        self.scope
    }

    /// Whether the scope is the empty set (a fully skipped source: the
    /// splice degenerates to passing the baseline through unchanged).
    pub fn is_empty_scope(&self) -> bool {
        self.scope.is_false()
    }

    /// `(base ∧ ¬scope) ∨ recomputed` — the baseline verdict outside
    /// the scoped space, the fresh verdict inside it.
    pub fn splice(&mut self, m: &mut BddManager, base: Bdd, recomputed: Bdd) -> Bdd {
        self.ops += 1;
        let outside = m.and(base, self.not_scope);
        m.or(outside, recomputed)
    }

    /// The baseline restricted to the unscoped space: `base ∧ ¬scope`.
    /// Cache-hot after a [`Splicer::splice`] of the same `base`.
    pub fn outside(&self, m: &mut BddManager, base: Bdd) -> Bdd {
        m.and(base, self.not_scope)
    }

    /// Splice operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(8)
    }

    #[test]
    fn splice_is_ite_when_recomputed_stays_in_scope() {
        let mut m = mgr();
        let scope = m.var(0);
        let base = m.var(1);
        let v2 = m.var(2);
        let recomputed = m.and(scope, v2); // fresh result, inside scope
        let mut s = Splicer::new(&mut m, scope);
        let got = s.splice(&mut m, base, recomputed);
        // (base ∧ ¬scope) ∨ (scope ∧ v2)  ==  ite(scope, v2, base)
        let want = {
            let ns = m.not(scope);
            let lo = m.and(ns, base);
            let hi = m.and(scope, v2);
            m.or(lo, hi)
        };
        assert_eq!(got, want);
    }

    #[test]
    fn empty_scope_passes_baseline_through() {
        let mut m = mgr();
        let base = m.var(3);
        let mut s = Splicer::new(&mut m, Bdd::FALSE);
        assert!(s.is_empty_scope());
        let got = s.splice(&mut m, base, Bdd::FALSE);
        assert_eq!(got, base);
    }

    #[test]
    fn full_scope_replaces_baseline_entirely() {
        let mut m = mgr();
        let base = m.var(1);
        let recomputed = m.var(2);
        let mut s = Splicer::new(&mut m, Bdd::TRUE);
        let got = s.splice(&mut m, base, recomputed);
        assert_eq!(got, recomputed);
    }

    #[test]
    fn recomputing_the_scoped_part_of_base_is_identity() {
        let mut m = mgr();
        let scope = m.var(0);
        let v1 = m.var(1);
        let base = m.or(scope, v1);
        let inside = m.and(base, scope);
        let mut s = Splicer::new(&mut m, scope);
        let got = s.splice(&mut m, base, inside);
        assert_eq!(got, base);
    }

    #[test]
    fn ops_counts_every_splice() {
        let mut m = mgr();
        let scope = m.var(0);
        let base = m.var(1);
        let mut s = Splicer::new(&mut m, scope);
        assert_eq!(s.ops(), 0);
        s.splice(&mut m, base, Bdd::FALSE);
        s.splice(&mut m, Bdd::FALSE, base);
        assert_eq!(s.ops(), 2);
    }
}
