//! Property tests of the observability layer's encoding and bounds
//! invariants: snapshot JSON is deterministic and lossless, merge is a
//! commutative monoid action (counters sum, gauges max, histogram
//! buckets add), histograms never leave their fixed bucket range, and
//! the flight-recorder ring never exceeds its capacity.

use proptest::prelude::*;
use s2_obs::metrics::HIST_BUCKETS;
use s2_obs::{Histogram, MetricsSnapshot};

/// Metric-name pool shaped like the real naming scheme
/// (`subsystem.thing.aspect`), plus names with quotes, backslashes, and
/// spaces so the JSON string encoder's escaping is exercised. Repeated
/// draws of the same name fold into one entry, which is exactly what
/// the snapshot API does anyway.
const NAMES: [&str; 10] = [
    "bdd.unique.lookups",
    "bdd.cache.hits",
    "net.frames.sent",
    "cp.rounds",
    "dp.verdicts",
    "pool.claims",
    "a",
    "weird \"quoted\" name",
    "back\\slash",
    "tab\there",
];

/// Character pool for label-value escaping: every class the exposition
/// escaper must handle (backslash, quote, newline, comma, braces,
/// unicode) alongside benign text.
const HOSTILE: [char; 12] = ['a', 'Z', '0', ' ', '\\', '"', '\n', ',', '{', '}', '=', 'λ'];

fn name() -> impl Strategy<Value = String> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string())
}

fn snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec((name(), any::<u32>()), 0..8),
        proptest::collection::vec((name(), any::<u32>()), 0..8),
        // Sample values stay below 2^32 so histogram sums remain
        // exactly representable through the JSON f64 number path.
        proptest::collection::vec(
            (name(), proptest::collection::vec(0u64..(1 << 32), 0..32)),
            0..4,
        ),
    )
        .prop_map(|(counters, gauges, hists)| {
            let mut s = MetricsSnapshot::default();
            for (k, v) in counters {
                s.counter(&k, u64::from(v));
            }
            for (k, v) in gauges {
                s.gauge_max(&k, u64::from(v));
            }
            for (k, samples) in hists {
                let h = Histogram::default();
                for v in &samples {
                    h.record(*v);
                }
                s.histograms.insert(k, h.snapshot());
            }
            s
        })
}

proptest! {
    /// Encoding is lossless and byte-deterministic: decode(encode(s))
    /// equals `s`, and re-encoding yields the identical bytes.
    #[test]
    fn prop_snapshot_json_roundtrips_deterministically(s in snapshot()) {
        let text = s.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("own output decodes");
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.to_json(), text);
    }

    /// Merge semantics: counters sum, gauges max, histogram counts and
    /// sums add — for every key of either side.
    #[test]
    fn prop_merge_sums_counters_maxes_gauges(a in snapshot(), b in snapshot()) {
        let mut m = a.clone();
        m.merge(&b);
        for k in a.counters.keys().chain(b.counters.keys()) {
            prop_assert_eq!(
                m.counter_value(k),
                a.counter_value(k) + b.counter_value(k),
                "counter {}", k
            );
        }
        for k in a.gauges.keys().chain(b.gauges.keys()) {
            prop_assert_eq!(
                m.gauge_value(k),
                a.gauge_value(k).max(b.gauge_value(k)),
                "gauge {}", k
            );
        }
        for k in a.histograms.keys().chain(b.histograms.keys()) {
            let count = |s: &MetricsSnapshot| s.histograms.get(k).map_or(0, |h| h.count);
            let sum = |s: &MetricsSnapshot| s.histograms.get(k).map_or(0, |h| h.sum);
            prop_assert_eq!(count(&m), count(&a) + count(&b), "hist count {}", k);
            prop_assert_eq!(sum(&m), sum(&a).wrapping_add(sum(&b)), "hist sum {}", k);
        }
    }

    /// Merge is commutative, so the controller may fold worker
    /// snapshots in any arrival order.
    #[test]
    fn prop_merge_is_commutative(a in snapshot(), b in snapshot()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Histograms stay inside their fixed bucket array for any input:
    /// every sample lands in `[0, HIST_BUCKETS)`, nothing is dropped,
    /// and no bucket is ever allocated past initialization.
    #[test]
    fn prop_histogram_buckets_are_bounded(samples in proptest::collection::vec(any::<u64>(), 0..256)) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!(s.buckets.iter().all(|&(i, _)| (i as usize) < HIST_BUCKETS));
        prop_assert_eq!(
            s.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            samples.len() as u64
        );
        let mut sorted = s.buckets.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, s.buckets, "buckets ascending by index");
    }

    /// Quantiles are monotone in `q` and always inside `[min, max]`.
    #[test]
    fn prop_quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(any::<u64>(), 1..256)) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.min, *samples.iter().min().unwrap());
        prop_assert_eq!(s.max, *samples.iter().max().unwrap());
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= s.min && v <= s.max, "q={} v={}", q, v);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }

    /// Prometheus rendering is deterministic, validates against the
    /// exposition grammar, and covers every metric name of the input
    /// snapshot — including names with quotes/backslashes/spaces,
    /// which must sanitize rather than corrupt the line format.
    #[test]
    fn prop_exposition_roundtrips_every_name(s in snapshot(), w in snapshot(), up in any::<bool>()) {
        use s2_obs::expo;
        let workers = vec![
            expo::WorkerSeries { id: 0, up, stale: !up, snapshot: Some(w.clone()) },
            expo::WorkerSeries { id: 7, up: false, stale: false, snapshot: None },
        ];
        let once = expo::render(&s, &workers);
        prop_assert_eq!(&once, &expo::render(&s, &workers), "non-deterministic render");
        let stats = expo::validate(&once).expect("renderer output validates");
        for name in s.counters.keys()
            .chain(s.gauges.keys())
            .chain(s.histograms.keys())
            .chain(w.counters.keys())
            .chain(w.gauges.keys())
            .chain(w.histograms.keys())
        {
            // Collisions (same name as two kinds, or names that
            // sanitize identically) render under a suffixed family,
            // so accept any family the sanitized name prefixes.
            let pname = expo::metric_name(name);
            prop_assert!(
                stats.families.keys().any(|f| f.starts_with(&pname)),
                "{} missing from exposition", name
            );
        }
        prop_assert!(once.contains("s2_worker_up{worker=\"7\"} 0"));
    }

    /// Label-value escaping survives the validator's unescaper for any
    /// string: a hand-built sample line with an arbitrary label value
    /// still parses.
    #[test]
    fn prop_escaped_label_values_stay_parseable(
        raw in proptest::collection::vec(0usize..HOSTILE.len(), 0..32)
    ) {
        use s2_obs::expo;
        let v: String = raw.iter().map(|&i| HOSTILE[i]).collect();
        let doc = format!(
            "# TYPE x counter\nx{{l=\"{}\"}} 1\n",
            expo::escape_label_value(&v)
        );
        prop_assert!(expo::validate(&doc).is_ok(), "doc: {:?}", doc);
    }
}

#[cfg(feature = "obs")]
mod traced {
    use proptest::prelude::*;

    /// Lane tag isolating this test's events from anything else the
    /// process traces concurrently.
    const LANE: u16 = 911;

    proptest! {
        // The ring and sink are process-global, so keep the case count
        // modest; each case still pushes up to ~1k events.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The flight-recorder ring is hard-bounded: however many
        /// events are emitted, `recent()` returns at most the ring
        /// capacity, newest-last.
        #[test]
        fn prop_ring_never_exceeds_capacity(n in 0usize..1024) {
            s2_obs::trace::set_enabled(true);
            s2_obs::trace::set_lane(LANE);
            for i in 0..n {
                s2_obs::event!("props.ring", i as u64);
            }
            let recent = s2_obs::recorder::recent();
            prop_assert!(recent.len() <= 4096, "ring overflow: {}", recent.len());
        }

        /// Chrome-trace export is a pure function of the event list:
        /// two exports of the same events are byte-identical, and the
        /// output parses as a JSON object with a traceEvents array.
        #[test]
        fn prop_chrome_export_is_deterministic(n in 1usize..64) {
            s2_obs::trace::set_enabled(true);
            s2_obs::trace::set_lane(LANE);
            for i in 0..n {
                let _span = s2_obs::span!("props.span", i as u64);
            }
            let events: Vec<_> = s2_obs::trace::take_events()
                .into_iter()
                .filter(|e| e.lane == LANE)
                .collect();
            prop_assert!(events.len() >= n);
            let once = s2_obs::trace::export_chrome_trace(&events);
            let twice = s2_obs::trace::export_chrome_trace(&events);
            prop_assert_eq!(&once, &twice);
            let doc = s2_obs::parse_json(&once).expect("export parses");
            match doc.get("traceEvents") {
                Some(s2_obs::Json::Arr(rows)) => prop_assert!(rows.len() >= events.len()),
                other => prop_assert!(false, "traceEvents missing: {:?}", other),
            }
        }
    }
}
