//! Monotonic-clock discipline for the workspace.
//!
//! `std::time::Instant` is quarantined here: every other crate measures
//! elapsed time through [`Stopwatch`], bounds a wait through
//! [`Deadline`], and timestamps trace events through a [`Clock`]. The
//! `r5-obs-clock` lint bans the `Instant`/`SystemTime` identifiers
//! everywhere else, which keeps the r3-no-wallclock-rng determinism
//! story honest: code outside this module cannot observe a clock
//! except through these narrow, test-substitutable wrappers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A source of monotonic nanosecond timestamps.
///
/// Trace events and metrics samples take their timestamps from a
/// `Clock` so tests can drive time by hand with [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic:
    /// successive calls never go backwards.
    fn now_ns(&self) -> u64;
}

/// Anchor instant for [`MonotonicClock`], fixed on first use so all
/// timestamps within a process share one epoch.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// The process-wide monotonic clock: nanoseconds since the first
/// observability call in this process.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Nanoseconds since the process anchor, from the global
/// [`MonotonicClock`]. Convenience for instrumentation macros.
pub fn now_ns() -> u64 {
    MonotonicClock.now_ns()
}

/// A hand-driven clock for tests: starts at zero, advances only when
/// told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// Measures elapsed wall-clock time from its creation. The workspace
/// replacement for `let t = Instant::now(); ... t.elapsed()`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// A point in the future to wait until. The workspace replacement for
/// `Instant::now() + timeout` paired with `recv_deadline`.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            at: Instant::now() + timeout,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline; zero once expired. Feed this to
    /// `recv_timeout` to bound a blocking wait by the deadline.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock;
        let mut prev = c.now_ns();
        for _ in 0..1000 {
            let now = c.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn manual_clock_advances_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(7));
        assert_eq!(c.now_ns(), 7_000);
        assert_eq!(c.now_ns(), 7_000);
    }

    #[test]
    fn deadline_expires_and_remaining_hits_zero() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);

        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
