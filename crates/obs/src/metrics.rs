//! The metrics registry: typed counters, gauges, and log-bucketed
//! histograms with an allocation-free hot path, plus the
//! [`MetricsSnapshot`] merge/encode layer that ships per-worker values
//! over the control protocol and aggregates them at the controller.
//!
//! Naming scheme: `<subsystem>.<thing>[.<aspect>]`, e.g.
//! `bdd.unique.hits`, `tcp.reconnects`, `pool.tasks_claimed`,
//! `mem.peak_bytes`. Counters sum across workers, gauges take the
//! maximum (they record high-water marks), histogram buckets add.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Schema identifier embedded in every encoded snapshot.
pub const SCHEMA: &str = "s2-metrics/v1";

/// Number of histogram buckets: bucket `i` holds values whose bit
/// length is `i` (bucket 0 is exactly zero), so any `u64` lands in
/// `[0, 64]`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing sum. Cross-worker merge: addition.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A high-water mark. Cross-worker merge: maximum.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Raise the value to at least `n`.
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram over `u64` samples. The bucket array is
/// fixed at construction; recording is two relaxed atomic adds and
/// never allocates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a sample lands in: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            // The sentinel min (u64::MAX when nothing was recorded)
            // must not leak into snapshots: an empty histogram reads
            // as min = max = 0.
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state: total count/sum plus the non-empty buckets
/// as `(bucket_index, count)` pairs sorted by index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded sample (0 when `count == 0`).
    pub max: u64,
    /// Non-empty buckets, ascending by index. Bucket `i` covers values
    /// of bit length `i` (`[2^(i-1), 2^i)`; bucket 0 is exactly zero).
    pub buckets: Vec<(u32, u64)>,
}

/// Smallest value bucket `i` can hold.
fn bucket_lo(i: u32) -> u64 {
    if i == 0 { 0 } else { 1u64 << (i - 1) }
}

/// Largest value bucket `i` can hold.
fn bucket_hi(i: u32) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl HistogramSnapshot {
    /// Bucket-wise addition of `other` into `self`, preserving the
    /// true min/max of the union (a plain `min()` would let an empty
    /// side's 0 clobber the real minimum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count > 0 {
            self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *merged.entry(i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the log2
    /// buckets: walk the cumulative counts to the bucket holding the
    /// rank, take the bucket midpoint, and clamp into `[min, max]` so
    /// degenerate shapes (one sample, one bucket) return exact values
    /// instead of bucket-resolution artifacts. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; don't pay bucket
        // resolution for them.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Rank in [1, count]: the smallest value with at least q·count
        // samples at or below it (the "nearest-rank" definition).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        // Bucket counts disagreeing with `count` only happens on
        // hand-assembled snapshots; fall back to the recorded maximum.
        self.max
    }
}

/// A named family of metrics. Lookups take a lock and may allocate;
/// callers cache the returned `Arc` so the recording hot path touches
/// only the atomic inside.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry instrumentation records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(lock(&self.hists).entry(name.to_string()).or_default())
    }

    /// Freeze every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock(&self.hists)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, mergeable, JSON-serializable view of a registry (or of
/// hand-assembled values bridged from legacy stats structs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name. Merge: sum.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name. Merge: max.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name. Merge: bucket-wise add.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Set a counter value (bridging helper for legacy stats structs).
    pub fn counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Raise a gauge to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// The value of counter `name`, zero if absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of gauge `name`, zero if absent.
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merge `other` into `self`: counters sum, gauges max, histogram
    /// buckets add. Commutative and associative, so the controller can
    /// fold worker snapshots in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Deterministic JSON encoding: BTreeMap key order, integer
    /// values. Equal snapshots produce byte-identical output.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"schema\": \"{SCHEMA}\",");
        o.push_str("  \"counters\": {");
        push_u64_map(&mut o, &self.counters);
        o.push_str("},\n  \"gauges\": {");
        push_u64_map(&mut o, &self.gauges);
        o.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    ");
            json::push_str(&mut o, k);
            let _ = write!(
                o,
                ": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                let _ = write!(o, "[{b}, {n}]");
            }
            o.push_str("] }");
        }
        if !self.histograms.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("}\n}\n");
        o
    }

    /// Decode a snapshot previously produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse_json(text)?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(format!("schema key missing or not '{SCHEMA}'"));
        }
        let counters = u64_map(&doc, "counters")?;
        let gauges = u64_map(&doc, "gauges")?;
        let Some(Json::Obj(raw_hists)) = doc.get("histograms") else {
            return Err("missing 'histograms' object".to_string());
        };
        let mut histograms = BTreeMap::new();
        for (name, h) in raw_hists {
            let path = format!("histograms.{name}");
            let count = field_u64(h, "count", &path)?;
            let sum = field_u64(h, "sum", &path)?;
            let raw = h
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{name}: missing buckets"))?;
            let mut buckets = Vec::with_capacity(raw.len());
            for pair in raw {
                let pair = pair.as_arr().ok_or_else(|| format!("{name}: bad bucket pair"))?;
                let (Some(b), Some(n)) = (
                    pair.first().and_then(Json::as_num),
                    pair.get(1).and_then(Json::as_num),
                ) else {
                    return Err(format!("{name}: bad bucket pair"));
                };
                let bpath = format!("histograms.{name}.buckets");
                buckets.push((
                    checked_u64(b, &bpath)? as u32,
                    checked_u64(n, &bpath)?,
                ));
            }
            // min/max joined the schema after v1 shipped; tolerate
            // their absence (older encoders) by deriving conservative
            // bounds from the bucket envelope.
            let derived_min = buckets.first().map_or(0, |&(b, _)| bucket_lo(b));
            let derived_max = buckets.last().map_or(0, |&(b, _)| bucket_hi(b));
            let min = match h.get("min") {
                Some(v) => {
                    let n = v.as_num().ok_or_else(|| format!("{path}.min: not a number"))?;
                    checked_u64(n, &format!("{path}.min"))?
                }
                None => derived_min,
            };
            let max = match h.get("max") {
                Some(v) => {
                    let n = v.as_num().ok_or_else(|| format!("{path}.max: not a number"))?;
                    checked_u64(n, &format!("{path}.max"))?
                }
                None => derived_max,
            };
            histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            );
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

fn push_u64_map(o: &mut String, m: &BTreeMap<String, u64>) {
    use std::fmt::Write as _;
    for (i, (k, v)) in m.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("\n    ");
        json::push_str(o, k);
        let _ = write!(o, ": {v}");
    }
    if !m.is_empty() {
        o.push_str("\n  ");
    }
}

fn u64_map(doc: &Json, key: &str) -> Result<BTreeMap<String, u64>, String> {
    let Some(Json::Obj(fields)) = doc.get(key) else {
        return Err(format!("missing '{key}' object"));
    };
    let mut out = BTreeMap::new();
    for (k, v) in fields {
        let n = v.as_num().ok_or_else(|| format!("{key}.{k}: not a number"))?;
        out.insert(k.clone(), checked_u64(n, &format!("{key}.{k}"))?);
    }
    Ok(out)
}

/// Counts and durations are unsigned: a NaN or negative value would be
/// silently cast to garbage, so name the offending key path instead.
fn checked_u64(n: f64, path: &str) -> Result<u64, String> {
    if !n.is_finite() {
        return Err(format!("{path}: non-finite value"));
    }
    if n < 0.0 {
        return Err(format!("{path}: negative value ({n})"));
    }
    Ok(n as u64)
}

fn field_u64(v: &Json, key: &str, path: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}.{key}: missing or not a number"))?;
    checked_u64(n, &format!("{path}.{key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_without_allocating_new_buckets() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert!(s.buckets.iter().all(|&(i, _)| (i as usize) < HIST_BUCKETS));
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 6);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = HistogramSnapshot::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_of_single_bucket_clamps_to_exact_value() {
        // All samples identical: every quantile must return the value
        // itself, not the bucket midpoint.
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (1000, 1000));
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 1000, "q={q}");
        }
    }

    #[test]
    fn quantile_of_saturated_top_bucket() {
        // u64::MAX lands in bucket 64 whose midpoint math must not
        // overflow, and the result must clamp to the recorded max.
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert!(s.quantile(0.5) >= s.min);
        assert!(s.quantile(0.5) <= s.max);
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(4); // bucket 3
        }
        for _ in 0..10 {
            h.record(1 << 20); // far tail
        }
        let s = h.snapshot();
        // p50 lives in the dense low bucket, p99 in the tail.
        assert!(s.quantile(0.5) <= 7, "p50 = {}", s.quantile(0.5));
        assert!(s.quantile(0.99) >= 1 << 19, "p99 = {}", s.quantile(0.99));
        assert_eq!(s.quantile(1.0), 1 << 20);
        assert_eq!(s.quantile(0.0), 4);
    }

    #[test]
    fn merge_preserves_min_max_across_workers() {
        let a_h = Histogram::default();
        a_h.record(100);
        a_h.record(200);
        let b_h = Histogram::default();
        b_h.record(3);
        b_h.record(5000);
        let mut a = a_h.snapshot();
        let b = b_h.snapshot();
        a.merge(&b);
        assert_eq!((a.min, a.max), (3, 5000));
        assert_eq!(a.count, 4);

        // Merging an empty side must not clobber min with 0.
        let mut c = a.clone();
        c.merge(&HistogramSnapshot::default());
        assert_eq!((c.min, c.max), (3, 5000));
        // ... and merging into an empty side adopts the other's bounds.
        let mut d = HistogramSnapshot::default();
        d.merge(&a);
        assert_eq!((d.min, d.max), (3, 5000));
    }

    #[test]
    fn min_max_survive_json_and_old_encodings_derive_bounds() {
        let r = Registry::new();
        r.histogram("lat").record(7);
        r.histogram("lat").record(90_000);
        let snap = r.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        let lat = &back.histograms["lat"];
        assert_eq!((lat.min, lat.max), (7, 90_000));

        // A pre-min/max document still decodes, with bucket-envelope
        // bounds substituted.
        let old = "{\"schema\": \"s2-metrics/v1\", \"counters\": {}, \"gauges\": {}, \
                   \"histograms\": {\"lat\": {\"count\": 1, \"sum\": 6, \"buckets\": [[3, 1]]}}}";
        let back = MetricsSnapshot::from_json(old).unwrap();
        let lat = &back.histograms["lat"];
        assert_eq!((lat.min, lat.max), (4, 7));
    }

    #[test]
    fn registry_snapshot_and_merge() {
        let r = Registry::new();
        r.counter("bdd.unique.hits").add(10);
        r.counter("bdd.unique.hits").add(5);
        r.gauge("mem.peak_bytes").record_max(100);
        r.gauge("mem.peak_bytes").record_max(50);
        r.histogram("tcp.frame_bytes").record(256);

        let mut a = r.snapshot();
        assert_eq!(a.counter_value("bdd.unique.hits"), 15);
        assert_eq!(a.gauge_value("mem.peak_bytes"), 100);

        let mut b = MetricsSnapshot::default();
        b.counter("bdd.unique.hits", 7);
        b.gauge_max("mem.peak_bytes", 300);
        a.merge(&b);
        assert_eq!(a.counter_value("bdd.unique.hits"), 22);
        assert_eq!(a.gauge_value("mem.peak_bytes"), 300);
    }

    #[test]
    fn json_roundtrip_is_exact_and_deterministic() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").add(3);
        r.gauge("g").set(9);
        r.histogram("h").record(5);
        r.histogram("h").record(0);
        let snap = r.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("own output decodes");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
        // BTreeMap ordering: "a.first" precedes "z.last" in the bytes.
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::default();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn nan_and_negative_values_rejected_with_key_path() {
        let mk = |counters: &str, hist: &str| {
            format!(
                "{{\"schema\": \"s2-metrics/v1\", \"counters\": {{{counters}}}, \
                 \"gauges\": {{}}, \"histograms\": {{{hist}}}}}"
            )
        };
        let err = MetricsSnapshot::from_json(&mk("\"cp.rounds\": -3", "")).unwrap_err();
        assert!(err.contains("counters.cp.rounds"), "{err}");
        assert!(err.contains("negative"), "{err}");

        let err = MetricsSnapshot::from_json(&mk("\"x\": 1e999", "")).unwrap_err();
        assert!(err.contains("counters.x"), "{err}");
        assert!(err.contains("non-finite"), "{err}");

        let err = MetricsSnapshot::from_json(&mk(
            "",
            "\"lat\": {\"count\": -1, \"sum\": 0, \"buckets\": []}",
        ))
        .unwrap_err();
        assert!(err.contains("histograms.lat.count"), "{err}");

        let err = MetricsSnapshot::from_json(&mk(
            "",
            "\"lat\": {\"count\": 1, \"sum\": 2, \"buckets\": [[0, -7]]}",
        ))
        .unwrap_err();
        assert!(err.contains("histograms.lat.buckets"), "{err}");

        // Sane docs still parse.
        assert!(MetricsSnapshot::from_json(&mk("\"ok\": 3", "")).is_ok());
    }
}
