//! The structured tracing core: interned span names, a per-thread lane
//! and span-depth, a bounded global event sink, and a Chrome
//! `trace_event` exporter (open the output in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Everything here is compiled only with the `obs` feature; without it
//! the [`span!`](crate::span) / [`event!`](crate::event) macros expand
//! to nothing and none of these symbols exist. With the feature on but
//! tracing not [`enabled`], each instrumentation point costs one
//! relaxed atomic load.

#[cfg(feature = "obs")]
mod imp {
    use crate::json;
    use crate::recorder;
    use crate::time;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Event kind: a completed span with a duration.
    pub const KIND_SPAN: u8 = 0;
    /// Event kind: an instantaneous point event.
    pub const KIND_INSTANT: u8 = 1;

    /// Cap on buffered events; beyond it new events are counted in
    /// `dropped` instead of growing the sink without bound.
    const SINK_CAP: usize = 1 << 21;

    /// One trace event. `name` indexes the intern table; `lane` is the
    /// logical thread (0 = controller, `n + 1` = worker `n`); `depth`
    /// is the span-stack depth at emission. `span`/`parent` stitch the
    /// causal tree: every span gets a process-unique id, and `parent`
    /// is the span that was open — on this thread, or adopted from a
    /// propagated trace context — when the event began (0 = root).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Event {
        /// Interned name id (see [`name_of`]).
        pub name: u16,
        /// [`KIND_SPAN`] or [`KIND_INSTANT`].
        pub kind: u8,
        /// Logical thread lane.
        pub lane: u16,
        /// Span-stack depth when the event was emitted.
        pub depth: u16,
        /// Start timestamp, nanoseconds since the process anchor.
        pub ts_ns: u64,
        /// Duration in nanoseconds (zero for instants).
        pub dur_ns: u64,
        /// One free-form numeric argument.
        pub arg: u64,
        /// This span's id (0 for instants).
        pub span: u64,
        /// The causally enclosing span's id (0 = root).
        pub parent: u64,
    }

    impl Event {
        /// Pack into six words for the flight-recorder ring.
        pub fn pack(&self) -> [u64; 6] {
            let meta = u64::from(self.name)
                | (u64::from(self.kind) << 16)
                | (u64::from(self.lane) << 24)
                | (u64::from(self.depth) << 40);
            [self.ts_ns, self.dur_ns, self.arg, meta, self.span, self.parent]
        }

        /// Inverse of [`Event::pack`].
        pub fn unpack(w: [u64; 6]) -> Event {
            Event {
                name: (w[3] & 0xffff) as u16,
                kind: ((w[3] >> 16) & 0xff) as u8,
                lane: ((w[3] >> 24) & 0xffff) as u16,
                depth: ((w[3] >> 40) & 0xffff) as u16,
                ts_ns: w[0],
                dur_ns: w[1],
                arg: w[2],
                span: w[4],
                parent: w[5],
            }
        }
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

    /// Span-id allocation: a per-process counter in the low 48 bits,
    /// an id-space tag in the high 16. The controller process keeps
    /// tag 0; a remote worker process is tagged with `worker + 1`
    /// (see [`set_id_space`]) so ids allocated on both sides of the
    /// control protocol never collide when traces are stitched.
    static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
    static ID_SPACE: AtomicU64 = AtomicU64::new(0);
    /// Trace epoch: bumped on recovery/restart boundaries so a stale
    /// propagated context (from before the bump) is not adopted as a
    /// parent afterwards.
    static EPOCH: AtomicU64 = AtomicU64::new(1);
    /// The last published trace context, read by in-process worker
    /// threads at command-dispatch time (see [`publish_ctx`]).
    static PUB_EPOCH: AtomicU64 = AtomicU64::new(0);
    static PUB_PARENT: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static LANE: Cell<u16> = const { Cell::new(0) };
        static DEPTH: Cell<u16> = const { Cell::new(0) };
        /// Innermost open span on this thread (0 = none).
        static CURRENT: Cell<u64> = const { Cell::new(0) };
        /// Parent adopted from a propagated cross-thread/cross-process
        /// context; used when no local span is open.
        static ADOPTED: Cell<u64> = const { Cell::new(0) };
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether tracing is on. The disabled fast path of every
    /// instrumentation point is exactly this load.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off process-wide.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Intern a span/event name, returning its stable id. Called once
    /// per call site (cached in a `OnceLock` by the macros).
    pub fn intern(name: &'static str) -> u16 {
        let mut names = lock(&NAMES);
        if let Some(i) = names.iter().position(|&n| n == name) {
            return i as u16;
        }
        let id = names.len().min(u16::MAX as usize) as u16;
        if (id as usize) == names.len() {
            names.push(name);
        }
        id
    }

    /// The name behind an interned id.
    pub fn name_of(id: u16) -> &'static str {
        lock(&NAMES).get(id as usize).copied().unwrap_or("?")
    }

    /// Intern a name that is not a compile-time literal (event batches
    /// shipped from a remote worker arrive as strings). Reuses an
    /// existing entry when the spelling matches, so the leak is
    /// bounded by the number of *distinct* span names in the fleet.
    pub fn intern_owned(name: &str) -> u16 {
        if let Some(i) = lock(&NAMES).iter().position(|&n| n == name) {
            return i as u16;
        }
        intern(Box::leak(name.to_string().into_boxed_str()))
    }

    /// Bind this process to a span-id space (`worker + 1` for a remote
    /// worker process; the controller keeps the default 0) so ids from
    /// different processes never collide in a stitched trace.
    pub fn set_id_space(tag: u16) {
        ID_SPACE.store(u64::from(tag) << 48, Ordering::Relaxed);
    }

    fn next_span_id() -> u64 {
        ID_SPACE.load(Ordering::Relaxed)
            | (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & ((1u64 << 48) - 1))
    }

    /// The current trace epoch.
    pub fn epoch() -> u64 {
        EPOCH.load(Ordering::Relaxed)
    }

    /// Advance the trace epoch (recovery / restart boundary): contexts
    /// published or shipped under the old epoch stop being adopted.
    pub fn bump_epoch() {
        EPOCH.fetch_add(1, Ordering::Relaxed);
    }

    /// Fast-forward this process's epoch to a propagated one (remote
    /// worker processes follow the controller's epoch through the
    /// trace contexts attached to protocol commands). The epoch only
    /// ever moves forward, so a reordered stale context cannot rewind
    /// it — it simply fails the [`adopt`] equality check.
    pub fn sync_epoch(e: u64) {
        EPOCH.fetch_max(e, Ordering::Relaxed);
    }

    /// The innermost span causally active on this thread: the local
    /// open span if any, else the adopted cross-thread/process parent.
    pub fn current_span() -> u64 {
        let cur = CURRENT.with(Cell::get);
        if cur != 0 {
            cur
        } else {
            ADOPTED.with(Cell::get)
        }
    }

    /// Publish this thread's `(epoch, current span)` as the fleet
    /// trace context. The controller calls this before dispatching
    /// commands; worker threads adopt it via [`adopt_published`].
    pub fn publish_ctx() {
        PUB_PARENT.store(current_span(), Ordering::Relaxed);
        PUB_EPOCH.store(epoch(), Ordering::Release);
    }

    /// The last published `(epoch, parent)` context — what a remote
    /// proxy attaches to outgoing protocol commands.
    pub fn published_ctx() -> (u64, u64) {
        let e = PUB_EPOCH.load(Ordering::Acquire);
        (e, PUB_PARENT.load(Ordering::Relaxed))
    }

    /// Adopt a propagated trace context as this thread's parent for
    /// spans opened outside any local span. A context from another
    /// epoch is stale (pre-recovery) and clears the adoption instead.
    pub fn adopt(ctx_epoch: u64, parent: u64) {
        let parent = if ctx_epoch == epoch() { parent } else { 0 };
        ADOPTED.with(|a| a.set(parent));
    }

    /// Adopt the last published context (in-process worker threads, at
    /// command dispatch).
    pub fn adopt_published() {
        let (e, p) = published_ctx();
        adopt(e, p);
    }

    /// Bind this thread to a logical lane (0 = controller, `n + 1` =
    /// worker `n`). Worker threads call this once at spawn.
    pub fn set_lane(lane: u16) {
        LANE.with(|l| l.set(lane));
    }

    /// This thread's lane.
    pub fn lane() -> u16 {
        LANE.with(Cell::get)
    }

    /// Record an event into the sink and the flight-recorder ring.
    pub fn record(e: Event) {
        recorder::push(e);
        let mut sink = lock(&SINK);
        if sink.len() < SINK_CAP {
            sink.push(e);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emit an instant event.
    pub fn instant(name: u16, arg: u64) {
        record(Event {
            name,
            kind: KIND_INSTANT,
            lane: lane(),
            depth: DEPTH.with(Cell::get),
            ts_ns: time::now_ns(),
            dur_ns: 0,
            arg,
            span: 0,
            parent: current_span(),
        });
    }

    /// Drain all buffered events, in emission order per lane.
    pub fn take_events() -> Vec<Event> {
        std::mem::take(&mut *lock(&SINK))
    }

    /// Events dropped because the sink was full.
    pub fn dropped() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }

    /// An RAII guard that records a [`KIND_SPAN`] event when dropped.
    /// Constructed by the [`span!`](crate::span) macro.
    #[derive(Debug)]
    pub struct SpanGuard {
        name: u16,
        lane: u16,
        depth: u16,
        start_ns: u64,
        arg: u64,
        span: u64,
        parent: u64,
        /// The previously open span, restored on drop.
        prev: u64,
    }

    impl SpanGuard {
        /// Open a span now on this thread.
        pub fn enter(name: u16, arg: u64) -> SpanGuard {
            let depth = DEPTH.with(|d| {
                let v = d.get();
                d.set(v.saturating_add(1));
                v
            });
            let parent = current_span();
            let span = next_span_id();
            let prev = CURRENT.with(|c| c.replace(span));
            SpanGuard {
                name,
                lane: lane(),
                depth,
                start_ns: time::now_ns(),
                arg,
                span,
                parent,
                prev,
            }
        }

        /// This span's id (to parent work dispatched elsewhere).
        pub fn id(&self) -> u64 {
            self.span
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            CURRENT.with(|c| c.set(self.prev));
            let now = time::now_ns();
            record(Event {
                name: self.name,
                kind: KIND_SPAN,
                lane: self.lane,
                depth: self.depth,
                ts_ns: self.start_ns,
                dur_ns: now.saturating_sub(self.start_ns),
                arg: self.arg,
                span: self.span,
                parent: self.parent,
            });
        }
    }

    /// Render events as a Chrome `trace_event` JSON document
    /// (`{"traceEvents": [...]}`): one `ph:"X"` complete event per
    /// span, `ph:"i"` per instant, plus `thread_name` metadata so
    /// Perfetto labels lanes "controller" / "worker-N". Every event's
    /// `args` carries its `span`/`parent` ids, and spans whose parent
    /// sits on a *different* lane additionally get a `ph:"s"`/`ph:"f"`
    /// flow pair so the stitched cross-process causality renders as
    /// arrows between lanes instead of disjoint timelines.
    pub fn export_chrome_trace(events: &[Event]) -> String {
        use std::fmt::Write as _;
        let mut lanes: Vec<u16> = events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        // Span id -> lane, for cross-lane flow detection.
        let span_lane: std::collections::BTreeMap<u64, u16> = events
            .iter()
            .filter(|e| e.span != 0)
            .map(|e| (e.span, e.lane))
            .collect();
        let mut o = String::new();
        o.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        for lane in &lanes {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            let label = if *lane == 0 {
                "controller".to_string()
            } else {
                format!("worker-{}", lane - 1)
            };
            let _ = write!(
                o,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":"
            );
            json::push_str(&mut o, &label);
            o.push_str("}}");
        }
        for e in events {
            if !first {
                o.push_str(",\n");
            }
            first = false;
            o.push('{');
            o.push_str("\"name\":");
            json::push_str(&mut o, name_of(e.name));
            let ts_us = e.ts_ns as f64 / 1e3;
            match e.kind {
                KIND_SPAN => {
                    let dur_us = (e.dur_ns as f64 / 1e3).max(0.001);
                    let _ = write!(o, ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":", e.lane);
                    json::push_f64(&mut o, ts_us);
                    o.push_str(",\"dur\":");
                    json::push_f64(&mut o, dur_us);
                }
                _ => {
                    let _ = write!(o, ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":", e.lane);
                    json::push_f64(&mut o, ts_us);
                }
            }
            let _ = write!(
                o,
                ",\"args\":{{\"arg\":{},\"depth\":{},\"span\":{},\"parent\":{}}}}}",
                e.arg, e.depth, e.span, e.parent
            );
            // A span causally parented on another lane: draw the
            // stitch as a flow arrow from the parent's lane to this
            // span's start. Both bind points share the child's
            // timestamp; Perfetto attaches them to the enclosing
            // slices.
            if e.kind == KIND_SPAN && e.parent != 0 {
                if let Some(&plane) = span_lane.get(&e.parent) {
                    if plane != e.lane {
                        let _ = write!(
                            o,
                            ",\n{{\"ph\":\"s\",\"cat\":\"stitch\",\"name\":\"stitch\",\
                             \"id\":{},\"pid\":1,\"tid\":{plane},\"ts\":",
                            e.span
                        );
                        json::push_f64(&mut o, ts_us);
                        let _ = write!(
                            o,
                            "}},\n{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"stitch\",\
                             \"name\":\"stitch\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":",
                            e.span, e.lane
                        );
                        json::push_f64(&mut o, ts_us);
                        o.push('}');
                    }
                }
            }
        }
        o.push_str("\n]}\n");
        o
    }
}

#[cfg(feature = "obs")]
pub use imp::*;

#[cfg(not(feature = "obs"))]
mod noop {
    /// Event kind: a completed span with a duration.
    pub const KIND_SPAN: u8 = 0;
    /// Event kind: an instantaneous point event.
    pub const KIND_INSTANT: u8 = 1;

    /// Stub event type so obs-off callers can hold `Vec<Event>`
    /// unconditionally (the remote-protocol codec also decodes into
    /// it); nothing records or exports these without the feature.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Event {
        /// Interned name id.
        pub name: u16,
        /// [`KIND_SPAN`] or [`KIND_INSTANT`].
        pub kind: u8,
        /// Logical thread lane.
        pub lane: u16,
        /// Span-stack depth when the event was emitted.
        pub depth: u16,
        /// Start timestamp, nanoseconds since the process anchor.
        pub ts_ns: u64,
        /// Duration in nanoseconds (zero for instants).
        pub dur_ns: u64,
        /// One free-form numeric argument.
        pub arg: u64,
        /// This span's id (0 for instants).
        pub span: u64,
        /// The causally enclosing span's id (0 = root).
        pub parent: u64,
    }

    /// Always false without the `obs` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `obs` feature.
    pub fn set_id_space(_tag: u16) {}

    /// Always epoch 1 without the `obs` feature.
    pub fn epoch() -> u64 {
        1
    }

    /// No-op without the `obs` feature.
    pub fn bump_epoch() {}

    /// No-op without the `obs` feature.
    pub fn sync_epoch(_e: u64) {}

    /// Always 0 (no span) without the `obs` feature.
    pub fn current_span() -> u64 {
        0
    }

    /// No-op without the `obs` feature.
    pub fn publish_ctx() {}

    /// Always `(0, 0)` without the `obs` feature.
    pub fn published_ctx() -> (u64, u64) {
        (0, 0)
    }

    /// No-op without the `obs` feature.
    pub fn adopt(_ctx_epoch: u64, _parent: u64) {}

    /// No-op without the `obs` feature.
    pub fn adopt_published() {}

    /// Always id 0 without the `obs` feature (nothing records).
    pub fn intern_owned(_name: &str) -> u16 {
        0
    }

    /// Always `"?"` without the `obs` feature.
    pub fn name_of(_id: u16) -> &'static str {
        "?"
    }

    /// No-op without the `obs` feature (dropping imported events is
    /// fine: tracing can never be enabled without it).
    pub fn record(_e: Event) {}

    /// No-op without the `obs` feature.
    pub fn set_enabled(_on: bool) {}

    /// No-op without the `obs` feature.
    pub fn set_lane(_lane: u16) {}

    /// Always lane 0 without the `obs` feature.
    pub fn lane() -> u16 {
        0
    }

    /// Always empty without the `obs` feature.
    pub fn take_events() -> Vec<Event> {
        Vec::new()
    }

    /// Always zero without the `obs` feature.
    pub fn dropped() -> u64 {
        0
    }

    /// An empty Chrome `trace_event` document (there are never events
    /// to export without the `obs` feature).
    pub fn export_chrome_trace(_events: &[Event]) -> String {
        "{\"traceEvents\":[\n]}\n".to_string()
    }
}

#[cfg(not(feature = "obs"))]
pub use noop::*;

/// Open a span that closes (and records a complete event) when the
/// returned guard drops. `span!("name")` or `span!("name", arg)` where
/// `arg` is any expression convertible to `u64` with `as`. Expands to
/// nothing without the `obs` feature.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {
        if $crate::trace::enabled() {
            static __S2_OBS_NAME: ::std::sync::OnceLock<u16> = ::std::sync::OnceLock::new();
            let __id = *__S2_OBS_NAME.get_or_init(|| $crate::trace::intern($name));
            ::core::option::Option::Some($crate::trace::SpanGuard::enter(__id, ($arg) as u64))
        } else {
            ::core::option::Option::None
        }
    };
}

/// Record an instantaneous event. `event!("name")` or
/// `event!("name", arg)`. Expands to nothing without the `obs`
/// feature.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! event {
    ($name:literal) => {
        $crate::event!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {
        if $crate::trace::enabled() {
            static __S2_OBS_NAME: ::std::sync::OnceLock<u16> = ::std::sync::OnceLock::new();
            let __id = *__S2_OBS_NAME.get_or_init(|| $crate::trace::intern($name));
            $crate::trace::instant(__id, ($arg) as u64);
        }
    };
}

/// No-op `span!`: the tokens (including the name literal) are
/// discarded at expansion, so they never reach the binary.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:literal $(, $arg:expr)?) => {
        ()
    };
}

/// No-op `event!` (see [`span!`](crate::span)).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! event {
    ($name:literal $(, $arg:expr)?) => {};
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    /// Trace state is process-global, so exercise it from one test to
    /// avoid cross-test interference under the parallel test runner.
    #[test]
    fn spans_events_and_export() {
        set_enabled(true);
        let _ = take_events();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner", 42u64);
            crate::event!("test.instant", 7u64);
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 3);
        // Instant first (spans record on close), inner closes before outer.
        assert_eq!(name_of(events[0].name), "test.instant");
        assert_eq!(events[0].kind, KIND_INSTANT);
        assert_eq!(events[0].arg, 7);
        assert_eq!(name_of(events[1].name), "test.inner");
        assert_eq!(events[1].depth, 1);
        assert_eq!(name_of(events[2].name), "test.outer");
        assert_eq!(events[2].depth, 0);
        assert!(events[2].dur_ns >= events[1].dur_ns);

        // Stitching: the inner span and the instant are parented on
        // the outer span; the outer span is a root.
        let outer = &events[2];
        assert_ne!(outer.span, 0);
        assert_eq!(outer.parent, 0);
        assert_eq!(events[1].parent, outer.span);
        assert_eq!(events[0].parent, outer.span);
        assert_ne!(events[1].span, outer.span);
        // The span stack unwound fully.
        assert_eq!(current_span(), 0);

        let json = export_chrome_trace(&events);
        let doc = crate::json::parse_json(&json).expect("exporter output is valid JSON");
        let te = doc.get("traceEvents").and_then(crate::json::Json::as_arr).unwrap();
        // 1 lane metadata + 3 events (all same-lane: no flow arrows).
        assert_eq!(te.len(), 4);
        assert!(json.contains("\"parent\":"));

        // Disabled: no events recorded, cost is the enabled() check.
        {
            let _g = crate::span!("test.disabled");
            crate::event!("test.disabled.instant");
        }
        assert!(take_events().is_empty());

        // Phase 2 (same test: trace state is process-global): a
        // thread with no local span adopts the published context as
        // its parent, and a stale-epoch context is refused.
        set_enabled(true);
        let _ = take_events();
        let parent_id;
        {
            let _outer = crate::span!("test.ctx.outer");
            publish_ctx();
            parent_id = current_span();
            assert_ne!(parent_id, 0);
        }
        let t = std::thread::spawn(move || {
            adopt_published();
            {
                let _w = crate::span!("test.ctx.worker");
            }
            adopt(epoch() + 1, 4242);
            {
                let _w = crate::span!("test.ctx.orphan");
            }
        });
        t.join().unwrap();
        set_enabled(false);
        let events = take_events();
        let find = |n: &str| {
            events
                .iter()
                .find(|e| name_of(e.name) == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert_eq!(find("test.ctx.worker").parent, parent_id);
        assert_eq!(find("test.ctx.orphan").parent, 0);

        // Cross-lane parents export flow arrows.
        let mut stitched = *find("test.ctx.worker");
        stitched.lane = 3;
        let mut outer = *find("test.ctx.outer");
        outer.lane = 0;
        let stitched_json = export_chrome_trace(&[outer, stitched]);
        assert!(stitched_json.contains("\"ph\":\"s\""), "{stitched_json}");
        assert!(stitched_json.contains("\"ph\":\"f\""), "{stitched_json}");
        crate::json::parse_json(&stitched_json).expect("stitched export is valid JSON");
    }

    #[test]
    fn event_pack_roundtrips() {
        let e = Event {
            name: 513,
            kind: KIND_SPAN,
            lane: 9,
            depth: 3,
            ts_ns: 123_456_789,
            dur_ns: 42,
            arg: u64::MAX,
            span: (7 << 48) | 12345,
            parent: 99,
        };
        assert_eq!(Event::unpack(e.pack()), e);
    }

    #[test]
    fn intern_owned_reuses_existing_names() {
        let a = intern("test.interned.name");
        let b = intern_owned("test.interned.name");
        assert_eq!(a, b);
        let c = intern_owned("test.interned.other");
        assert_eq!(name_of(c), "test.interned.other");
    }
}
