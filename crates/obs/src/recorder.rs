//! The crash flight recorder: a fixed-size lock-free ring of the most
//! recent trace events, dumped when something goes wrong (barrier
//! deadline expiry, recovery epoch bump, OOM degradation, panic) so a
//! chaos-test failure comes with the events leading up to it.
//!
//! The ring is a seqlock per slot: a writer claims an index with one
//! `fetch_add`, marks the slot odd, writes the packed event, marks it
//! even. Readers validate the sequence word before and after copying
//! and skip torn slots, so writers never block and never wait for
//! readers. Compiled only with the `obs` feature; without it every
//! function here is a no-op stub.

#[cfg(feature = "obs")]
mod imp {
    use crate::trace::Event;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Ring capacity in events (power of two).
    pub const RING_CAP: usize = 4096;

    struct Slot {
        /// `2*claim + 1` while the slot is being written, `2*claim + 2`
        /// once the write of claim `claim` is complete, 0 when never
        /// written.
        seq: AtomicU64,
        w: [AtomicU64; 6],
    }

    struct Ring {
        head: AtomicUsize,
        slots: Vec<Slot>,
    }

    fn ring() -> &'static Ring {
        static RING: OnceLock<Ring> = OnceLock::new();
        RING.get_or_init(|| Ring {
            head: AtomicUsize::new(0),
            slots: (0..RING_CAP)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    w: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        })
    }

    static DUMP_PATH: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);
    static DUMPS: AtomicU64 = AtomicU64::new(0);

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append a trace event to the ring (called from
    /// [`crate::trace::record`] for every event).
    pub fn push(e: Event) {
        let r = ring();
        let claim = r.head.fetch_add(1, Ordering::Relaxed) as u64;
        let slot = &r.slots[(claim as usize) & (RING_CAP - 1)];
        slot.seq.store(claim * 2 + 1, Ordering::Release);
        for (dst, src) in slot.w.iter().zip(e.pack()) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(claim * 2 + 2, Ordering::Release);
    }

    /// The ring's current contents, oldest first. Slots being written
    /// concurrently (torn) are skipped. Never returns more than
    /// [`RING_CAP`] events.
    pub fn recent() -> Vec<Event> {
        let r = ring();
        let head = r.head.load(Ordering::Acquire);
        let mut out: Vec<(u64, Event)> = Vec::with_capacity(RING_CAP.min(head));
        for slot in &r.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let w = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
                slot.w[4].load(Ordering::Relaxed),
                slot.w[5].load(Ordering::Relaxed),
            ];
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue;
            }
            out.push(((s1 - 2) / 2, Event::unpack(w)));
        }
        out.sort_unstable_by_key(|&(claim, _)| claim);
        out.into_iter().map(|(_, e)| e).collect()
    }

    /// Where [`dump`] writes (appends). Unset, dumps go to stderr.
    pub fn set_dump_path(path: Option<std::path::PathBuf>) {
        *lock(&DUMP_PATH) = path;
    }

    /// Number of dumps taken so far in this process.
    pub fn dumps() -> u64 {
        DUMPS.load(Ordering::Relaxed)
    }

    /// Render the ring as a JSON dump record and write it to the
    /// configured dump path (or stderr). Returns the rendered document
    /// so tests and callers can assert on its contents.
    pub fn dump(trigger: &str) -> String {
        use std::fmt::Write as _;
        DUMPS.fetch_add(1, Ordering::Relaxed);
        let events = recent();
        let mut o = String::new();
        o.push_str("{\"schema\":\"s2-flight-recorder/v1\",\"trigger\":");
        crate::json::push_str(&mut o, trigger);
        let _ = write!(o, ",\"events\":{}", events.len());
        // One record per line (JSONL): flatten the exporter's pretty
        // newlines so a dump file with several records (e.g. a barrier
        // deadline followed by the recovery epoch bump) splits cleanly
        // on line boundaries.
        o.push_str(",\"trace\":");
        let trace = crate::trace::export_chrome_trace(&events);
        o.push_str(&trace.trim_end().replace('\n', " "));
        o.push_str("}\n");
        let path = lock(&DUMP_PATH).clone();
        match path {
            Some(p) => {
                use std::io::Write as _;
                let write = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&p)
                    .and_then(|mut f| f.write_all(o.as_bytes()));
                if let Err(e) = write {
                    eprintln!("s2-obs: flight-recorder dump to {} failed: {e}", p.display());
                }
            }
            None => eprintln!("s2-obs: flight-recorder dump (trigger: {trigger}): {o}"),
        }
        o
    }

    /// Chain a panic hook that dumps the flight recorder before the
    /// default handler runs. Idempotent per process.
    pub fn install_panic_hook() {
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let _ = dump("panic");
                prev(info);
            }));
        });
    }
}

#[cfg(feature = "obs")]
pub use imp::*;

#[cfg(not(feature = "obs"))]
mod noop {
    /// Always empty without the `obs` feature.
    pub fn recent() -> Vec<crate::trace::Event> {
        Vec::new()
    }

    /// No-op without the `obs` feature.
    pub fn set_dump_path(_path: Option<std::path::PathBuf>) {}

    /// No-op without the `obs` feature; always zero.
    pub fn dumps() -> u64 {
        0
    }

    /// No-op without the `obs` feature; returns an empty document.
    pub fn dump(_trigger: &str) -> String {
        String::new()
    }

    /// No-op without the `obs` feature.
    pub fn install_panic_hook() {}
}

#[cfg(not(feature = "obs"))]
pub use noop::*;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::trace::{Event, KIND_INSTANT};

    /// Lane tag for this test's events, so assertions filter out
    /// events other tests in this binary push into the shared ring.
    const TEST_LANE: u16 = 4242;

    fn ev(i: u64) -> Event {
        Event {
            name: 0,
            kind: KIND_INSTANT,
            lane: TEST_LANE,
            depth: 0,
            ts_ns: i,
            dur_ns: 0,
            arg: i,
            span: 0,
            parent: 0,
        }
    }

    fn ours() -> Vec<Event> {
        recent().into_iter().filter(|e| e.lane == TEST_LANE).collect()
    }

    /// The ring is process-global, so all phases run in one test.
    #[test]
    fn ring_is_bounded_ordered_and_dumpable() {
        // Phase 1: concurrent pushers with readers in flight — torn
        // slots must be skipped, so every observed payload is one we
        // actually pushed.
        let threads: Vec<_> = (0..4)
            .map(|t: u64| {
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        push(ev(t * 1_000_000 + i));
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for e in ours() {
                assert!(e.arg % 1_000_000 < 2000);
            }
        }
        for t in threads {
            t.join().expect("pusher thread");
        }
        assert!(ours().len() <= RING_CAP);

        // Phase 2: overflow the ring sequentially — it stays bounded,
        // keeps the newest events, and reads back in claim order.
        let total = RING_CAP as u64 * 2 + 100;
        for i in 0..total {
            push(ev(i + 10_000_000));
        }
        let events = ours();
        assert!(events.len() <= RING_CAP);
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].arg < pair[1].arg, "claim order preserved");
        }
        assert_eq!(events.last().map(|e| e.arg), Some(10_000_000 + total - 1));

        // Phase 3: a dump renders the trigger and valid JSON.
        let doc = dump("unit-test");
        let parsed = crate::json::parse_json(doc.trim()).expect("dump is valid JSON");
        assert_eq!(
            parsed.get("trigger").and_then(crate::json::Json::as_str),
            Some("unit-test")
        );
        assert!(parsed.get("trace").is_some());
        assert!(dumps() >= 1);
    }
}
