//! Prometheus text-exposition rendering of metrics snapshots — the
//! scrape surface of the live telemetry plane. Dependency-free by the
//! workspace rule: the format is line-oriented and simple enough that
//! a hand-rolled writer (plus the [`validate`] checker used by tests
//! and `cargo xtask expo-check`) costs less than a client library.
//!
//! Layout: every metric family is announced with one `# TYPE` line,
//! followed by the controller-aggregate sample (no labels) and one
//! sample per worker (`{worker="N"}`). Counters and gauges map
//! directly; log2 histograms render as Prometheus *summaries* —
//! `{quantile="0.5|0.9|0.99"}` derived via
//! [`HistogramSnapshot::quantile`] plus `_sum`/`_count` series. Worker
//! liveness is its own pair of gauges (`s2_worker_up`,
//! `s2_worker_stale`) so a dead worker degrades the scrape (stale
//! last-known values, `up 0`) instead of wedging it.
//!
//! Rendering is deterministic: families in `BTreeMap` name order,
//! workers ascending by id — equal inputs produce identical bytes.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Quantiles every summary family exports.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// One worker's contribution to a scrape: liveness, staleness, and the
/// last snapshot pulled from it (`None` when none was ever received).
#[derive(Debug, Clone, Default)]
pub struct WorkerSeries {
    /// Worker index (the `worker="N"` label value).
    pub id: u32,
    /// Whether the worker answered the metrics poll this scrape.
    pub up: bool,
    /// Whether `snapshot` is a stale last-known value rather than a
    /// fresh pull.
    pub stale: bool,
    /// The most recent snapshot pulled from this worker.
    pub snapshot: Option<MetricsSnapshot>,
}

/// Map a registry metric name (`daemon.delta.ms`) to a valid
/// Prometheus metric name (`s2_daemon_delta_ms`): the `s2_` namespace
/// prefix, then every character outside `[a-zA-Z0-9_:]` replaced with
/// `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("s2_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Push a label set like `{worker="0",quantile="0.5"}`; empty pairs
/// render nothing.
fn push_labels(o: &mut String, pairs: &[(&str, &str)]) {
    if pairs.is_empty() {
        return;
    }
    o.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(o, "{k}=\"{}\"", escape_label_value(v));
    }
    o.push('}');
}

fn push_sample(o: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    o.push_str(name);
    push_labels(o, labels);
    let _ = writeln!(o, " {value}");
}

/// The names of one metric kind across the aggregate and every worker
/// snapshot, deduplicated in sorted order. The aggregate is normally a
/// superset (it merges the workers), but the union keeps a series
/// visible even if a name only exists worker-side.
fn family_names<'a, T>(
    agg: &'a BTreeMap<String, T>,
    workers: &'a [WorkerSeries],
    pick: impl Fn(&'a MetricsSnapshot) -> &'a BTreeMap<String, T>,
) -> BTreeSet<&'a str> {
    let mut names: BTreeSet<&str> = agg.keys().map(String::as_str).collect();
    for w in workers {
        if let Some(s) = &w.snapshot {
            names.extend(pick(s).keys().map(String::as_str));
        }
    }
    names
}

fn push_summary(o: &mut String, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
    for (q, qs) in QUANTILES {
        let mut pairs: Vec<(&str, &str)> = labels.to_vec();
        pairs.push(("quantile", qs));
        o.push_str(name);
        push_labels(o, &pairs);
        let _ = writeln!(o, " {}", h.quantile(q));
    }
    push_sample(o, &format!("{name}_sum"), labels, h.sum);
    push_sample(o, &format!("{name}_count"), labels, h.count);
}

/// A family name not yet used in this document. Sanitization can
/// collide distinct registry names (`a.b` and `a_b`), and the same
/// name may exist as two metric kinds; Prometheus forbids duplicate
/// `# TYPE` declarations, so later claimants get a deterministic
/// `_<kind>`(+counter) suffix instead.
fn claim_name(used: &mut BTreeSet<String>, pname: String, kind: &str) -> String {
    if used.insert(pname.clone()) {
        return pname;
    }
    let suffixed = format!("{pname}_{kind}");
    if used.insert(suffixed.clone()) {
        return suffixed;
    }
    let mut i = 2u32;
    loop {
        let numbered = format!("{pname}_{kind}{i}");
        if used.insert(numbered.clone()) {
            return numbered;
        }
        i += 1;
    }
}

/// Render the controller-aggregate snapshot plus per-worker series as
/// a Prometheus text-exposition document.
pub fn render(aggregate: &MetricsSnapshot, workers: &[WorkerSeries]) -> String {
    let mut o = String::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    let worker_ids: Vec<String> = workers.iter().map(|w| w.id.to_string()).collect();

    // Worker liveness first: these exist even when a worker never
    // produced a snapshot, and a scraper alerting on `up == 0` should
    // not have to read past the payload series to find them.
    if !workers.is_empty() {
        used.insert("s2_worker_up".to_string());
        used.insert("s2_worker_stale".to_string());
        o.push_str("# TYPE s2_worker_up gauge\n");
        for (w, id) in workers.iter().zip(&worker_ids) {
            push_sample(&mut o, "s2_worker_up", &[("worker", id)], u64::from(w.up));
        }
        o.push_str("# TYPE s2_worker_stale gauge\n");
        for (w, id) in workers.iter().zip(&worker_ids) {
            push_sample(&mut o, "s2_worker_stale", &[("worker", id)], u64::from(w.stale));
        }
    }

    for (kind, names) in [
        ("counter", family_names(&aggregate.counters, workers, |s| &s.counters)),
        ("gauge", family_names(&aggregate.gauges, workers, |s| &s.gauges)),
    ] {
        for name in names {
            let pname = claim_name(&mut used, metric_name(name), kind);
            let _ = writeln!(o, "# TYPE {pname} {kind}");
            let value = |s: &MetricsSnapshot| match kind {
                "counter" => s.counters.get(name).copied(),
                _ => s.gauges.get(name).copied(),
            };
            if let Some(v) = value(aggregate) {
                push_sample(&mut o, &pname, &[], v);
            }
            for (w, id) in workers.iter().zip(&worker_ids) {
                if let Some(v) = w.snapshot.as_ref().and_then(&value) {
                    push_sample(&mut o, &pname, &[("worker", id)], v);
                }
            }
        }
    }

    for name in family_names(&aggregate.histograms, workers, |s| &s.histograms) {
        let pname = claim_name(&mut used, metric_name(name), "summary");
        let _ = writeln!(o, "# TYPE {pname} summary");
        if let Some(h) = aggregate.histograms.get(name) {
            push_summary(&mut o, &pname, &[], h);
        }
        for (w, id) in workers.iter().zip(&worker_ids) {
            if let Some(h) = w.snapshot.as_ref().and_then(|s| s.histograms.get(name)) {
                push_summary(&mut o, &pname, &[("worker", id)], h);
            }
        }
    }
    o
}

/// What [`validate`] learned about a document.
#[derive(Debug, Clone, Default)]
pub struct ExpoStats {
    /// Total sample lines.
    pub samples: usize,
    /// Declared metric families (`# TYPE` lines), name → type.
    pub families: BTreeMap<String, String>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse the `{k="v",...}` label block starting at `rest` (which
/// begins with `{`), returning the remainder after `}`.
fn parse_labels(rest: &str, line_no: usize) -> Result<&str, String> {
    let mut rest = &rest[1..];
    loop {
        if let Some(r) = rest.strip_prefix('}') {
            return Ok(r);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        // Scan the escaped value for its closing quote.
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                Some((_, '\\')) => {
                    match chars.next() {
                        Some((_, '\\' | '"' | 'n')) => {}
                        _ => return Err(format!("line {line_no}: bad escape in label value")),
                    };
                }
                Some((i, '"')) => break i,
                Some(_) => {}
                None => return Err(format!("line {line_no}: unterminated label value")),
            }
        };
        rest = &rest[close + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
}

/// Validate a Prometheus text-exposition document: every line is a
/// comment, blank, `# TYPE`, or a well-formed sample whose family was
/// declared first; names match the Prometheus charset; label values
/// are properly quoted/escaped; values parse as numbers. Strictness is
/// deliberate — the renderer always declares types, so an undeclared
/// sample means renderer drift, not operator creativity.
pub fn validate(text: &str) -> Result<ExpoStats, String> {
    let mut stats = ExpoStats::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut it = decl.split_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {line_no}: malformed TYPE line"));
            };
            if !valid_name(name) {
                return Err(format!("line {line_no}: bad metric name {name:?}"));
            }
            if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                return Err(format!("line {line_no}: unknown metric type {kind:?}"));
            }
            if stats.families.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let family_declared = |n: &str| stats.families.contains_key(n);
        let summary_child = |n: &str, suffix: &str| {
            n.strip_suffix(suffix).is_some_and(|base| {
                matches!(stats.families.get(base).map(String::as_str), Some("summary" | "histogram"))
            })
        };
        if !family_declared(name) && !summary_child(name, "_sum") && !summary_child(name, "_count") {
            return Err(format!("line {line_no}: sample {name:?} precedes its TYPE declaration"));
        }
        let mut rest = &line[name_end..];
        if rest.starts_with('{') {
            rest = parse_labels(rest, line_no)?;
        }
        let value = rest.trim();
        if value.is_empty() {
            return Err(format!("line {line_no}: sample without value"));
        }
        let numeric = value.parse::<f64>().is_ok()
            || ["+Inf", "-Inf", "NaN"].contains(&value);
        if !numeric {
            return Err(format!("line {line_no}: bad sample value {value:?}"));
        }
        stats.samples += 1;
    }
    if stats.samples == 0 {
        return Err("no samples in document".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("dpv.scoped.runs").add(3);
        r.counter("daemon.delta.committed").add(7);
        r.gauge("daemon.slo.commit_p99_us").set(1200);
        let h = r.histogram("daemon.delta.ms");
        for v in [2, 3, 5, 40] {
            h.record(v);
        }
        r.snapshot()
    }

    fn workers(snap: &MetricsSnapshot) -> Vec<WorkerSeries> {
        vec![
            WorkerSeries { id: 0, up: true, stale: false, snapshot: Some(snap.clone()) },
            WorkerSeries { id: 1, up: false, stale: true, snapshot: Some(snap.clone()) },
        ]
    }

    #[test]
    fn render_validates_and_covers_every_name() {
        let snap = sample_snapshot();
        let text = render(&snap, &workers(&snap));
        let stats = validate(&text).expect("renderer output validates");
        for name in snap.counters.keys().chain(snap.gauges.keys()).chain(snap.histograms.keys()) {
            assert!(
                stats.families.contains_key(&metric_name(name)),
                "{name} missing from exposition"
            );
        }
        // Worker-labeled series and liveness gauges are present.
        assert!(text.contains("s2_dpv_scoped_runs{worker=\"0\"} 3"), "{text}");
        assert!(text.contains("s2_worker_up{worker=\"1\"} 0"), "{text}");
        assert!(text.contains("s2_worker_stale{worker=\"1\"} 1"), "{text}");
        assert!(text.contains("s2_daemon_delta_ms{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("s2_daemon_delta_ms_count 4"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = sample_snapshot();
        let a = render(&snap, &workers(&snap));
        let b = render(&snap, &workers(&snap));
        assert_eq!(a, b);
    }

    #[test]
    fn a_worker_without_snapshot_still_exports_liveness() {
        let snap = sample_snapshot();
        let ws = vec![WorkerSeries { id: 2, up: false, stale: false, snapshot: None }];
        let text = render(&snap, &ws);
        validate(&text).expect("valid");
        assert!(text.contains("s2_worker_up{worker=\"2\"} 0"));
        assert!(!text.contains("{worker=\"2\"} 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        // A snapshot whose *name* holds hostile characters sanitizes
        // into the metric name, never into a label.
        let mut s = MetricsSnapshot::default();
        s.counter("weird \"quoted\" name", 1);
        let text = render(&s, &[]);
        validate(&text).expect("sanitized name validates");
        assert!(text.contains("s2_weird__quoted__name 1"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(validate("# TYPE x counter\n").is_err(), "no samples");
        assert!(validate("x 1\n").is_err(), "sample precedes TYPE");
        assert!(validate("# TYPE x counter\nx{l=\"v} 1\n").is_err(), "unterminated label");
        assert!(validate("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate("# TYPE 0bad counter\n0bad 1\n").is_err());
        assert!(validate("# TYPE x counter\n# TYPE x gauge\nx 1\n").is_err(), "dup TYPE");
        assert!(validate("# TYPE x summary\nx_sum 3\nx_count 2\n").is_ok());
        assert!(validate("# TYPE x wat\nx 1\n").is_err());
    }

    #[test]
    fn summary_quantiles_come_from_the_histogram() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(10);
        }
        let mut s = MetricsSnapshot::default();
        s.histograms.insert("lat".into(), h.snapshot());
        let text = render(&s, &[]);
        assert!(text.contains("s2_lat{quantile=\"0.5\"} 10"), "{text}");
        assert!(text.contains("s2_lat_sum 1000"), "{text}");
    }
}
