//! # s2-obs
//!
//! The observability layer of the S2 workspace, dependency-free by
//! construction (std only). Five concerns live here:
//!
//! * [`time`] — the *only* sanctioned home of `std::time::Instant` in
//!   the workspace (enforced by the `r5-obs-clock` lint). Supervision
//!   code measures elapsed time through [`time::Stopwatch`] and bounds
//!   waits through [`time::Deadline`]; trace timestamps come from the
//!   [`time::Clock`] trait so tests can substitute a manual clock.
//! * [`metrics`] — typed counters/gauges/log-bucketed histograms and
//!   the [`metrics::MetricsSnapshot`] merge/encode path that subsumes
//!   the runtime's ad-hoc stats structs. Snapshots encode to JSON with
//!   BTreeMap key order, so equal snapshots produce identical bytes
//!   (the workspace R2 discipline).
//! * [`expo`] — Prometheus text-exposition rendering of metrics
//!   snapshots (controller aggregate plus per-worker labeled series
//!   and liveness gauges), the scrape surface behind the daemon's
//!   `metrics` admin command, with the format validator used by
//!   `cargo xtask expo-check`.
//! * [`trace`] — a structured tracing core: thread-local span stack,
//!   per-thread lanes (controller / worker *n*), a bounded global
//!   event sink, and a Chrome `trace_event` exporter viewable in
//!   `chrome://tracing` or Perfetto. Compiled only with the `obs`
//!   feature; without it the [`span!`]/[`event!`] macros expand to
//!   nothing. With the feature on but tracing not enabled, the
//!   fast path of every instrumentation point is one atomic load.
//! * [`recorder`] — the flight recorder: a fixed-size lock-free ring
//!   of recent trace events, dumped on barrier-deadline expiry,
//!   recovery epoch bumps, OOM degradation, or panic, so chaos-test
//!   failures come with evidence instead of guesswork.
//!
//! [`json`] carries the hand-rolled JSON value/parser/writer shared by
//! the bench trajectory schema, the metrics encoding, and the trace
//! validator in `cargo xtask trace-check`.

#![deny(missing_docs)]

pub mod expo;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod time;
pub mod trace;

pub use json::{parse_json, Json};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use time::{Clock, Deadline, ManualClock, MonotonicClock, Stopwatch};
