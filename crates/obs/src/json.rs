//! Minimal hand-rolled JSON: a value type, a recursive-descent parser,
//! and writer helpers.
//!
//! The workspace deliberately carries no JSON dependency; this module
//! (grown out of the bench trajectory reader) is shared by the bench
//! schema check, the metrics snapshot codec, and the Chrome-trace
//! validator in `cargo xtask trace-check`.

use std::fmt::Write as _;

/// A parsed JSON value (just enough structure for schema validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as f64; our documents stay well within range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Accept exactly the escapes our writers emit (plus
                    // '/') so writer output always re-parses.
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    format!("bad \\u escape at byte {}", self.pos)
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Appends `v` as a JSON number, mapping non-finite values to `0`
/// (JSON has no NaN/Inf) and printing with three decimal places.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push('0');
    }
}

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes,
/// and control characters.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_structures() {
        let doc = parse_json(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
        assert!(parse_json(r#"{"a": 01x}"#).is_err());
    }

    #[test]
    fn push_str_escapes_and_reparses() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert!(out.contains("\\u0001"));
        // Writer output re-parses to the original string.
        let doc = parse_json(&out).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn push_f64_maps_non_finite_to_zero() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "0 1.500");
    }
}
