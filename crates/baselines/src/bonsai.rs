//! The destination-based compression baseline (the Bonsai role, §5.4).
//!
//! Bonsai compresses the control plane with respect to a concrete
//! destination; for a synthesized FatTree of *any* k the quotient network
//! has exactly 6 nodes (paper footnote 3): the destination edge switch,
//! one aggregation + one edge switch of the destination pod, one core
//! switch, and one aggregation + one edge switch of a remote pod. All-pair
//! reachability is then checked by verifying the quotient once per
//! destination prefix, destinations in parallel — which reproduces the
//! paper's observation that Bonsai is memory-light but *compute*-bound:
//! its cost grows with the number of destinations, not with memory.

use crate::batfish::{run_dpv, simulate_control_plane, MonolithicOptions};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_routing::{NetworkModel, RoutingError};
use s2_topogen::fattree::{FatTree, FatTreeParams};
use s2_obs::Stopwatch;
use std::time::Duration;

/// Report of a Bonsai-style all-pair verification.
#[derive(Debug, Clone, Default)]
pub struct BonsaiReport {
    /// Destination prefixes verified.
    pub destinations: usize,
    /// Destinations whose quotient network verified reachability from both
    /// pod-local and remote abstract sources.
    pub verified: usize,
    /// Destinations with a reachability violation.
    pub violations: Vec<Prefix>,
    /// Total compression work performed (abstract nodes built); the
    /// compute-cost proxy that scales with k and destination count.
    pub compression_work: usize,
    /// Peak tracked memory over any single quotient verification — tiny by
    /// construction, which is Bonsai's selling point.
    pub peak_bytes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Builds the 6-node quotient network for one destination edge switch of a
/// k-ary FatTree and returns it together with the abstract source nodes
/// (same-pod edge, remote-pod edge).
///
/// Node roles in the quotient:
/// 0 = destination edge, 1 = same-pod agg, 2 = same-pod edge,
/// 3 = core, 4 = remote agg, 5 = remote edge.
pub fn quotient_for_destination(dst_prefix: Prefix) -> (NetworkModel, Vec<(NodeId, Vec<Prefix>)>) {
    // The quotient of any FatTree is the k=2 FatTree: 2 pods × (1 agg +
    // 1 edge) + 1 core = 5 switches... plus the second edge in the
    // destination pod, which k=2 lacks. We therefore synthesize a minimal
    // custom 6-node Clos with the generator's building blocks.
    use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;
    use s2_topogen::LinkAddrAllocator;

    let mut topo = Topology::new();
    let names = ["q-dst", "q-agg0", "q-edge0", "q-core", "q-agg1", "q-edge1"];
    let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
    let mut configs: Vec<DeviceConfig> = ids
        .iter()
        .map(|n| {
            let mut cfg = DeviceConfig::new(names[n.index()], Vendor::A);
            let mut bgp = BgpProcess::new(70000 + n.0, Ipv4Addr::new(3, 0, 0, n.0 as u8 + 1));
            bgp.max_ecmp = 64;
            cfg.bgp = Some(bgp);
            cfg
        })
        .collect();

    let mut alloc = LinkAddrAllocator::new();
    let mut iface_counter = [0usize; 6];
    let mut connect = |topo: &mut Topology, configs: &mut Vec<DeviceConfig>, x: NodeId, y: NodeId| {
        topo.connect(x, y);
        let (ax, ay) = alloc.next_pair();
        for (node, addr, peer_addr, peer) in [(x, ax, ay, y), (y, ay, ax, x)] {
            let idx = iface_counter[node.index()];
            iface_counter[node.index()] += 1;
            configs[node.index()]
                .interfaces
                .push(InterfaceConfig::new(format!("eth{idx}"), addr, 31));
            configs[node.index()].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: peer_addr,
                remote_as: 70000 + peer.0,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
        }
    };
    // dst-pod: dst—agg0, edge0—agg0; spine: agg0—core, agg1—core;
    // remote pod: edge1—agg1.
    connect(&mut topo, &mut configs, ids[0], ids[1]);
    connect(&mut topo, &mut configs, ids[2], ids[1]);
    connect(&mut topo, &mut configs, ids[1], ids[3]);
    connect(&mut topo, &mut configs, ids[4], ids[3]);
    connect(&mut topo, &mut configs, ids[5], ids[4]);

    configs[0].bgp.as_mut().unwrap().networks.push(Network { prefix: dst_prefix });

    let model = NetworkModel::build(topo, configs).expect("quotient is well-formed");
    // Abstract sources: the same-pod edge and the remote-pod edge.
    let sources = vec![(ids[2], Vec::new()), (ids[5], Vec::new())];
    (model, sources)
}

/// Verifies all-pair reachability of a k-ary FatTree the Bonsai way: one
/// quotient verification per destination prefix, run on `threads` OS
/// threads (the "cores of a single logical server").
pub fn verify_fattree(params: FatTreeParams, threads: usize) -> Result<BonsaiReport, RoutingError> {
    let start = Stopwatch::start();
    let half = params.k / 2;
    let destinations: Vec<Prefix> = (0..params.k)
        .flat_map(|p| (0..half).map(move |e| FatTree::server_prefix(p, e)))
        .collect();

    // Compression cost model: examining every switch of the concrete
    // topology once per destination (the real Bonsai builds an abstraction
    // by partition refinement over all nodes).
    let per_dest_work = params.switch_count();

    let threads = threads.max(1);
    let chunks: Vec<Vec<Prefix>> = destinations
        .chunks(destinations.len().div_ceil(threads))
        .map(|c| c.to_vec())
        .collect();

    let results: Vec<Result<BonsaiReport, RoutingError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = BonsaiReport::default();
                    for dst in chunk {
                        let (model, sources) = quotient_for_destination(dst);
                        // Touch every concrete switch once: compression.
                        local.compression_work += per_dest_work;
                        let (rib, cp) = simulate_control_plane(&model, &MonolithicOptions::default())?;
                        let src_nodes: Vec<NodeId> = sources.iter().map(|(n, _)| *n).collect();
                        // The expected destination is the abstract node
                        // holding the prefix (quotient node 0).
                        let expected = vec![(NodeId(0), vec![dst])];
                        let dpv = run_dpv(&model, &rib, &src_nodes, &expected, dst, None)?;
                        local.destinations += 1;
                        if dpv.unreachable_pairs.is_empty() {
                            local.verified += 1;
                        } else {
                            local.violations.push(dst);
                        }
                        local.peak_bytes = local
                            .peak_bytes
                            .max(cp.peak_route_bytes + dpv.bdd_peak_bytes);
                    }
                    Ok(local)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });

    let mut merged = BonsaiReport::default();
    for r in results {
        let r = r?;
        merged.destinations += r.destinations;
        merged.verified += r.verified;
        merged.violations.extend(r.violations);
        merged.compression_work += r.compression_work;
        merged.peak_bytes = merged.peak_bytes.max(r.peak_bytes);
    }
    merged.elapsed = start.elapsed();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotient_is_six_nodes_and_verifies() {
        let dst: Prefix = "10.0.0.0/24".parse().unwrap();
        let (model, sources) = quotient_for_destination(dst);
        assert_eq!(model.topology.node_count(), 6);
        assert!(model.session_diagnostics.is_empty());
        let (rib, _) = simulate_control_plane(&model, &MonolithicOptions::default()).unwrap();
        let src_nodes: Vec<NodeId> = sources.iter().map(|(n, _)| *n).collect();
        let expected = vec![(NodeId(0), vec![dst])];
        let dpv = run_dpv(&model, &rib, &src_nodes, &expected, dst, None).unwrap();
        // Both abstract sources reach the destination's prefix holder.
        assert_eq!(dpv.reachable_pairs, 2, "{:?}", dpv.unreachable_pairs);
    }

    #[test]
    fn fattree4_verifies_all_destinations() {
        let report = verify_fattree(FatTreeParams::new(4), 2).unwrap();
        assert_eq!(report.destinations, 8);
        assert_eq!(report.verified, 8, "violations: {:?}", report.violations);
        assert_eq!(report.compression_work, 8 * 20);
        assert!(report.peak_bytes > 0);
    }

    #[test]
    fn compression_work_scales_with_k_cubed() {
        // The compute-bound shape: per-destination work × #destinations
        // grows ~k^4 while memory stays flat.
        let w4 = verify_fattree(FatTreeParams::new(4), 4).unwrap();
        let w6 = verify_fattree(FatTreeParams::new(6), 4).unwrap();
        assert!(w6.compression_work > w4.compression_work * 3);
        // Peak memory is the quotient's, independent of k (within noise).
        assert!(w6.peak_bytes < w4.peak_bytes * 2);
    }
}
