//! The monolithic baseline verifier (the Batfish role).
//!
//! One logical server: a single fix-point engine over all switches and a
//! single BDD manager for the whole data plane. Everything — switch
//! models, policies, predicates, forwarding — is shared with S2; only the
//! execution strategy differs, which is exactly how the paper built S2 on
//! top of Batfish. An optional memory budget models the `-Xmx` limit of a
//! logical server: a run whose tracked peak exceeds the budget fails with
//! [`RoutingError::OutOfMemory`], which is how the benchmarks reproduce
//! "Batfish cannot scale past FatTree40" at our scaled-down sizes.

use s2_dataplane::{
    forward, FinalKind, Fib, ForwardOptions, NodePredicates, PacketSpace,
};
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::Prefix;
use s2_routing::{
    converge_bgp, converge_ospf, NetworkModel, RibSnapshot, RibStore, RoutingError, SwitchModel,
    DEFAULT_MAX_ROUNDS,
};
use s2_shard::ShardPlan;
use s2_obs::Stopwatch;
use std::time::Duration;

/// Options for the monolithic run.
#[derive(Debug, Clone)]
pub struct MonolithicOptions {
    /// Number of prefix shards; 0 or 1 disables sharding.
    pub shards: usize,
    /// Seed for the shard planner's equal-size shuffle.
    pub shard_seed: u64,
    /// Memory budget in (model-tracked) bytes; `None` = unlimited.
    pub memory_budget: Option<usize>,
    /// Fix-point round budget.
    pub max_rounds: usize,
    /// Links (as node pairs, either orientation) to fail *before*
    /// convergence — the brute-force oracle for the resilience sweep:
    /// a cold full re-verify under the failure, against which the warm
    /// incremental path is checked.
    pub failed_links: Vec<(NodeId, NodeId)>,
}

impl Default for MonolithicOptions {
    fn default() -> Self {
        MonolithicOptions {
            shards: 1,
            shard_seed: 7,
            memory_budget: None,
            max_rounds: DEFAULT_MAX_ROUNDS,
            failed_links: Vec::new(),
        }
    }
}

/// Resolves failed node-pair links to the `(node, interface)` ports on
/// both ends. Pairs that match no topology link are ignored.
pub fn failed_ports(
    model: &NetworkModel,
    failed_links: &[(NodeId, NodeId)],
) -> Vec<(NodeId, InterfaceId)> {
    let mut ports = Vec::new();
    for link in model.topology.links() {
        let ends = (link.a.0, link.b.0);
        if failed_links
            .iter()
            .any(|&(a, b)| ends == (a, b) || ends == (b, a))
        {
            ports.push(link.a);
            ports.push(link.b);
        }
    }
    ports
}

/// Control-plane statistics.
#[derive(Debug, Clone, Default)]
pub struct CpStats {
    /// OSPF rounds to convergence.
    pub ospf_rounds: usize,
    /// Total BGP rounds across shards.
    pub bgp_rounds: usize,
    /// Number of shards executed.
    pub shards: usize,
    /// Peak tracked route memory (bytes) across shards — per-shard state
    /// is freed between shards, so this is a max, not a sum.
    pub peak_route_bytes: usize,
    /// Total installed paths (the paper's "number of routes").
    pub total_paths: usize,
    /// Wall-clock time of the control-plane phase.
    pub elapsed: Duration,
}

/// Data-plane verification report.
#[derive(Debug, Clone, Default)]
pub struct DpvReport {
    /// `(src, dst)` pairs whose expected prefixes fully arrived.
    pub reachable_pairs: usize,
    /// Pairs with missing reachability.
    pub unreachable_pairs: Vec<(NodeId, NodeId)>,
    /// Number of loop final states observed.
    pub loops: usize,
    /// Number of sources with blackholed traffic.
    pub blackholed_sources: usize,
    /// Forwarding steps executed.
    pub steps: usize,
    /// Peak BDD bytes.
    pub bdd_peak_bytes: usize,
    /// Time spent compiling predicates.
    pub pred_time: Duration,
    /// Time spent forwarding symbolic packets.
    pub fwd_time: Duration,
}

/// Full report of a monolithic verification run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The final RIBs (identical to S2's, by construction and by test).
    pub rib: RibSnapshot,
    /// Control-plane statistics.
    pub cp: CpStats,
    /// Data-plane statistics.
    pub dpv: DpvReport,
}

/// Simulates the control plane on a single logical server, with optional
/// prefix sharding, returning the final RIBs.
pub fn simulate_control_plane(
    model: &NetworkModel,
    opts: &MonolithicOptions,
) -> Result<(RibSnapshot, CpStats), RoutingError> {
    let start = Stopwatch::start();
    let mut switches: Vec<SwitchModel> = model
        .topology
        .nodes()
        .map(|n| SwitchModel::new(model, n))
        .collect();
    if !opts.failed_links.is_empty() {
        let mut by_node: std::collections::BTreeMap<NodeId, Vec<InterfaceId>> =
            std::collections::BTreeMap::new();
        for (node, iface) in failed_ports(model, &opts.failed_links) {
            by_node.entry(node).or_default().push(iface);
        }
        for (node, ifaces) in by_node {
            switches[node.index()].set_failed_interfaces(model, ifaces);
        }
    }

    let mut stats = CpStats {
        ospf_rounds: converge_ospf(model, &mut switches, opts.max_rounds)?,
        ..CpStats::default()
    };

    let plan = if opts.shards <= 1 {
        ShardPlan::single(s2_shard::collect_prefixes(&switches))
    } else {
        s2_shard::plan(&switches, opts.shards, opts.shard_seed)
    };
    stats.shards = plan.shards.len();

    let mut store = RibStore::new(model.topology.node_count());
    for node in model.topology.nodes() {
        store.insert_all(node, switches[node.index()].base_rib_routes());
    }

    for shard in &plan.shards {
        let bgp_stats = converge_bgp(model, &mut switches, Some(shard), opts.max_rounds)?;
        stats.bgp_rounds += bgp_stats.rounds;
        stats.peak_route_bytes = stats.peak_route_bytes.max(bgp_stats.peak_bytes);
        stats.total_paths += bgp_stats.total_paths;
        if let Some(budget) = opts.memory_budget {
            if bgp_stats.peak_bytes > budget {
                return Err(RoutingError::OutOfMemory {
                    budget,
                    observed: bgp_stats.peak_bytes,
                });
            }
        }
        // Flush the shard's results to the persistent store, then the
        // in-memory state is dropped when the next shard begins.
        for node in model.topology.nodes() {
            store.insert_all(node, switches[node.index()].bgp_rib_routes());
        }
    }

    stats.elapsed = start.elapsed();
    Ok((store.snapshot(), stats))
}

/// Runs data-plane verification on a single BDD manager: compiles every
/// node's predicates, injects the full `dst_space` at each source, and
/// checks that each `(source, destination)` pair's expected prefixes
/// arrive. `expected[d]` lists the prefixes destination `d` must receive.
pub fn run_dpv(
    model: &NetworkModel,
    rib: &RibSnapshot,
    sources: &[NodeId],
    expected: &[(NodeId, Vec<Prefix>)],
    dst_space: Prefix,
    budget: Option<usize>,
) -> Result<DpvReport, RoutingError> {
    run_dpv_with_failures(model, rib, sources, expected, dst_space, budget, &[])
}

/// [`run_dpv`] with a set of failed ports masked in the forwarding step
/// (traffic whose egress lands on a failed port blackholes there) — the
/// data-plane half of the resilience-sweep oracle.
#[allow(clippy::too_many_arguments)]
pub fn run_dpv_with_failures(
    model: &NetworkModel,
    rib: &RibSnapshot,
    sources: &[NodeId],
    expected: &[(NodeId, Vec<Prefix>)],
    dst_space: Prefix,
    budget: Option<usize>,
    failed: &[(NodeId, InterfaceId)],
) -> Result<DpvReport, RoutingError> {
    let space = PacketSpace::new(0);
    let mut manager = space.manager();
    let mut report = DpvReport::default();
    let fwd_opts = ForwardOptions {
        failed_ports: failed.iter().copied().collect(),
        ..ForwardOptions::default()
    };

    let t0 = Stopwatch::start();
    let preds: Vec<NodePredicates> = model
        .topology
        .nodes()
        .map(|n| {
            let fib = Fib::from_rib(rib.node(n));
            NodePredicates::compile(model, n, &fib, &space, &mut manager)
        })
        .collect();
    report.pred_time = t0.elapsed();

    let t1 = Stopwatch::start();
    let inject_set = space.dst_in(&mut manager, dst_space);
    for &src in sources {
        let result = forward(
            &model.topology,
            &preds,
            &space,
            &mut manager,
            vec![(src, inject_set)],
            &fwd_opts,
        );
        report.steps += result.steps;
        report.loops += result.of_kind(FinalKind::Loop).count();
        let mut has_blackhole = false;
        for f in result.of_kind(FinalKind::Blackhole) {
            if !f.set.is_false() {
                has_blackhole = true;
            }
        }
        if has_blackhole {
            report.blackholed_sources += 1;
        }
        for (dst, prefixes) in expected {
            if *dst == src {
                continue;
            }
            let arrived = result.arrived_at(&mut manager, src, *dst);
            let wanted: Vec<_> = prefixes
                .iter()
                .map(|p| space.dst_in(&mut manager, *p))
                .collect();
            let want = manager.or_all(wanted);
            if manager.implies(want, arrived) {
                report.reachable_pairs += 1;
            } else {
                report.unreachable_pairs.push((src, *dst));
            }
        }
        report.bdd_peak_bytes = report.bdd_peak_bytes.max(manager.approx_bytes());
        if let Some(b) = budget {
            if manager.approx_bytes() > b {
                return Err(RoutingError::OutOfMemory {
                    budget: b,
                    observed: manager.approx_bytes(),
                });
            }
        }
    }
    report.fwd_time = t1.elapsed();
    Ok(report)
}

/// Full monolithic verification: control plane, then all-pair reachability
/// over `sources` (each source must receive every other source's expected
/// prefixes).
pub fn verify(
    model: &NetworkModel,
    sources: &[(NodeId, Vec<Prefix>)],
    dst_space: Prefix,
    opts: &MonolithicOptions,
) -> Result<BaselineReport, RoutingError> {
    let (rib, cp) = simulate_control_plane(model, opts)?;
    let src_nodes: Vec<NodeId> = sources.iter().map(|(n, _)| *n).collect();
    let dpv = run_dpv_with_failures(
        model,
        &rib,
        &src_nodes,
        sources,
        dst_space,
        opts.memory_budget,
        &failed_ports(model, &opts.failed_links),
    )?;
    Ok(BaselineReport { rib, cp, dpv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_topogen::fattree::{generate, FatTree, FatTreeParams};

    fn fattree_model(k: usize) -> (NetworkModel, Vec<(NodeId, Vec<Prefix>)>) {
        let ft = generate(FatTreeParams::new(k));
        let sources: Vec<(NodeId, Vec<Prefix>)> = (0..k)
            .flat_map(|p| {
                let ft = &ft;
                (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
            })
            .collect();
        let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
        (model, sources)
    }

    #[test]
    fn fattree4_all_pairs_reachable() {
        let (model, sources) = fattree_model(4);
        let report = verify(
            &model,
            &sources,
            "10.0.0.0/8".parse().unwrap(),
            &MonolithicOptions::default(),
        )
        .unwrap();
        let n = sources.len();
        assert_eq!(report.dpv.reachable_pairs, n * (n - 1), "{:?}", report.dpv.unreachable_pairs);
        assert_eq!(report.dpv.loops, 0);
        assert!(report.cp.total_paths > 0);
        // Every edge holds every server prefix (8 prefixes × 20 switches).
        assert!(report.rib.total_routes() >= 8 * 20);
    }

    #[test]
    fn sharded_run_produces_identical_ribs() {
        let (model, _) = fattree_model(4);
        let (rib1, s1) = simulate_control_plane(&model, &MonolithicOptions::default()).unwrap();
        let opts = MonolithicOptions {
            shards: 4,
            ..Default::default()
        };
        let (rib4, s4) = simulate_control_plane(&model, &opts).unwrap();
        assert_eq!(rib1, rib4);
        assert_eq!(s4.shards, 4);
        // Sharding lowers the peak (each shard holds ~1/4 of the routes).
        assert!(
            s4.peak_route_bytes < s1.peak_route_bytes,
            "sharded {} !< unsharded {}",
            s4.peak_route_bytes,
            s1.peak_route_bytes
        );
        // ...but costs extra rounds overall.
        assert!(s4.bgp_rounds > s1.bgp_rounds);
    }

    #[test]
    fn memory_budget_triggers_oom() {
        let (model, _) = fattree_model(4);
        let opts = MonolithicOptions {
            memory_budget: Some(1), // absurdly small
            ..Default::default()
        };
        assert!(matches!(
            simulate_control_plane(&model, &opts),
            Err(RoutingError::OutOfMemory { .. })
        ));
    }

    /// The failed-link oracle: one agg uplink of an edge survives via
    /// the other (ECMP), but failing *both* isolates the edge entirely.
    #[test]
    fn failed_links_reverify_cold() {
        let ft = generate(FatTreeParams::new(4));
        let (model, sources) = fattree_model(4);
        let victim = ft.edge(0, 0);
        let n = sources.len();

        let one = MonolithicOptions {
            failed_links: vec![(victim, ft.agg(0, 0))],
            ..Default::default()
        };
        let report = verify(&model, &sources, "10.0.0.0/8".parse().unwrap(), &one).unwrap();
        assert_eq!(
            report.dpv.reachable_pairs,
            n * (n - 1),
            "ECMP must survive a single uplink failure: {:?}",
            report.dpv.unreachable_pairs
        );

        let both = MonolithicOptions {
            failed_links: vec![(victim, ft.agg(0, 0)), (victim, ft.agg(0, 1))],
            ..Default::default()
        };
        let report = verify(&model, &sources, "10.0.0.0/8".parse().unwrap(), &both).unwrap();
        // Every pair that starts or ends at the isolated edge is lost.
        assert_eq!(report.dpv.reachable_pairs, (n - 1) * (n - 2));
        assert!(report
            .dpv
            .unreachable_pairs
            .iter()
            .all(|&(s, d)| s == victim || d == victim));
    }

    #[test]
    fn broken_origination_is_detected() {
        let ft = generate(FatTreeParams::new(4));
        let mut configs = ft.configs.clone();
        s2_topogen::inject::drop_network_statement(
            &mut configs,
            "pod0-edge0",
            FatTree::server_prefix(0, 0),
        );
        let sources: Vec<(NodeId, Vec<Prefix>)> = (0..4)
            .flat_map(|p| {
                let ft = &ft;
                (0..2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
            })
            .collect();
        let model = NetworkModel::build(ft.topology.clone(), configs).unwrap();
        let report = verify(
            &model,
            &sources,
            "10.0.0.0/8".parse().unwrap(),
            &MonolithicOptions::default(),
        )
        .unwrap();
        // Every other edge fails to reach pod0-edge0.
        let victim = ft.edge(0, 0);
        assert_eq!(report.dpv.unreachable_pairs.len(), 7);
        assert!(report.dpv.unreachable_pairs.iter().all(|(_, d)| *d == victim));
        // The missing prefix blackholes somewhere for every source.
        assert_eq!(report.dpv.blackholed_sources, 8);
    }
}
