//! # s2-baselines
//!
//! The two baseline verifiers S2 is compared against in §5:
//!
//! * [`batfish`] — a monolithic, single-"server" simulator + DPV using the
//!   *same* switch models as S2 (the Batfish role). Supports optional
//!   prefix sharding (the paper's "Batfish + prefix sharding" variant in
//!   Fig. 4) and a per-run memory budget that reproduces the JVM `-Xmx`
//!   out-of-memory behaviour at scaled-down thresholds.
//! * [`bonsai`] — a destination-based control-plane compression baseline
//!   (the Bonsai role): for each destination prefix of a FatTree it
//!   verifies a 6-node quotient network, parallelized over destinations.

#![deny(missing_docs)]

pub mod batfish;
pub mod bonsai;

pub use batfish::{
    failed_ports, run_dpv, run_dpv_with_failures, simulate_control_plane, verify, BaselineReport,
    CpStats, DpvReport, MonolithicOptions,
};
pub use bonsai::{verify_fattree as bonsai_verify_fattree, BonsaiReport};
