//! Criterion timing for Fig. 10: DPV (predicates + forwarding), batfish
//! vs S2, all-pair and single-pair.

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use s2::{S2Options, S2Verifier, VerificationRequest};
use s2_baselines::{run_dpv, simulate_control_plane, MonolithicOptions};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let w = workloads::fattree(6);
    let (rib, _) = simulate_control_plane(&w.model, &MonolithicOptions::default()).unwrap();

    let opts = S2Options { workers: 2, shards: 5, ..Default::default() };
    let verifier = S2Verifier::new(w.model.clone(), &opts).unwrap();
    let (s2_rib, _, _) = verifier.simulate().unwrap();
    let s2_rib = Arc::new(s2_rib);

    let sp = {
        let src = w.endpoints[0].0;
        let last = w.endpoints.last().unwrap();
        VerificationRequest::single_pair(src, last.0, last.1[0])
    };

    let mut g = c.benchmark_group("fig10_dpv");
    g.sample_size(10);
    g.bench_function("batfish_all_pair", |b| {
        b.iter(|| {
            run_dpv(&w.model, &rib, &w.request.sources, &w.request.expected, w.request.dst_space, None)
                .unwrap()
        })
    });
    g.bench_function("batfish_single_pair", |b| {
        b.iter(|| {
            run_dpv(&w.model, &rib, &sp.sources, &sp.expected, sp.dst_space, None).unwrap()
        })
    });
    g.bench_function("s2_2_all_pair", |b| {
        b.iter(|| verifier.run_dpv_only(s2_rib.clone(), &w.request).unwrap())
    });
    g.bench_function("s2_2_single_pair", |b| {
        b.iter(|| verifier.run_dpv_only(s2_rib.clone(), &sp).unwrap())
    });
    g.finish();
    verifier.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
