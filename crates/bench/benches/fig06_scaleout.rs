//! Criterion timing for Fig. 6: S2 scale-out on a fixed FatTree.

use bench::workloads;
use bench::figs::run_s2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s2::Scheme;

fn bench(c: &mut Criterion) {
    let w = workloads::fattree(6);
    let mut g = c.benchmark_group("fig06_scaleout");
    g.sample_size(10);
    for workers in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            b.iter(|| run_s2(&w, workers, 5, Scheme::Metis))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
