//! Criterion timing for Fig. 8: control-plane simulation with and without
//! prefix sharding.

use bench::workloads;
use bench::figs::run_s2_cp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_sharding");
    g.sample_size(10);
    for k in [4usize, 6] {
        let w = workloads::fattree(k);
        g.bench_with_input(BenchmarkId::new("off", k), &w, |b, w| {
            b.iter(|| run_s2_cp(w, 2, 1))
        });
        g.bench_with_input(BenchmarkId::new("sharded", k), &w, |b, w| {
            b.iter(|| run_s2_cp(w, 2, 10))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
