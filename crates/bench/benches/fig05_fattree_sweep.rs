//! Criterion timing for Fig. 5: the FatTree sweep across systems.

use bench::workloads;
use bench::figs::{run_batfish, run_bonsai, run_s2};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s2::Scheme;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_fattree_sweep");
    g.sample_size(10);
    for k in [4usize, 6] {
        let w = workloads::fattree(k);
        g.bench_with_input(BenchmarkId::new("batfish", k), &w, |b, w| {
            b.iter(|| run_batfish(w, 1))
        });
        g.bench_with_input(BenchmarkId::new("bonsai", k), &k, |b, &k| {
            b.iter(|| run_bonsai(k, 2))
        });
        g.bench_with_input(BenchmarkId::new("s2_2", k), &w, |b, w| {
            b.iter(|| run_s2(w, 2, 5, Scheme::Metis))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
