//! Criterion timing for Fig. 4: verifying the DCN with each system.

use bench::workloads;
use bench::figs::{run_batfish, run_s2};
use criterion::{criterion_group, criterion_main, Criterion};
use s2::Scheme;

fn bench(c: &mut Criterion) {
    let w = workloads::dcn(2, 4, 2);
    let mut g = c.benchmark_group("fig04_dcn");
    g.sample_size(10);
    g.bench_function("batfish", |b| b.iter(|| run_batfish(&w, 1)));
    g.bench_function("batfish_sharded", |b| b.iter(|| run_batfish(&w, 4)));
    g.bench_function("s2_2_nosharding", |b| b.iter(|| run_s2(&w, 2, 1, Scheme::Metis)));
    g.bench_function("s2_2", |b| b.iter(|| run_s2(&w, 2, 4, Scheme::Metis)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
