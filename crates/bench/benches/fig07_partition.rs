//! Criterion timing for Fig. 7: partition schemes.

use bench::workloads;
use bench::figs::run_s2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s2::Scheme;

fn bench(c: &mut Criterion) {
    let w = workloads::fattree(6);
    let mut g = c.benchmark_group("fig07_partition");
    g.sample_size(10);
    for scheme in [
        Scheme::Metis,
        Scheme::Random { seed: 42 },
        Scheme::Expert,
        Scheme::Imbalanced,
        Scheme::CommHeavy,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &scheme, |b, &scheme| {
            b.iter(|| run_s2(&w, 2, 5, scheme))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
