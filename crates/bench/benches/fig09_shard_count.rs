//! Criterion timing for Fig. 9: shard-count sweep.

use bench::workloads;
use bench::figs::run_s2_cp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let w = workloads::fattree(6);
    let mut g = c.benchmark_group("fig09_shard_count");
    g.sample_size(10);
    for shards in [1usize, 5, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            b.iter(|| run_s2_cp(&w, 2, shards))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
