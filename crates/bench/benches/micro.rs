//! Micro-benchmarks of the substrate hot paths: the wire codec (every
//! cross-worker route pays this), BDD DAG serialization (every
//! cross-worker packet pays this), LPM trie lookups, route-map
//! evaluation, best-path selection and graph partitioning.
//!
//! These quantify the constants behind the distributed design's
//! trade-offs: e.g. one serialized route costs ~100ns while a local
//! delivery is free, which is why the adj-RIB-out delta-send and
//! fragment-merging optimizations exist.

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use s2_bdd::{serialize as bdd_io, BddManager};
use s2_net::policy::Protocol;
use s2_net::{Ipv4Addr, Prefix, PrefixTrie};
use s2_routing::{BgpRoute, Origin};
use s2_runtime::wire;

fn sample_route(i: u32) -> BgpRoute {
    BgpRoute {
        prefix: Prefix::new(Ipv4Addr(0x0a000000 | (i << 8)), 24),
        next_hop: Ipv4Addr(0xac100001),
        as_path: vec![65000 + i, 65001, 65002, 65003],
        local_pref: 100,
        med: 0,
        origin: Origin::Igp,
        communities: vec![1, 2, 3],
        weight: 0,
        source_protocol: Protocol::Bgp,
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_wire");
    let routes: Vec<BgpRoute> = (0..64).map(sample_route).collect();
    g.bench_function("encode_64_routes", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(4096);
            for r in &routes {
                wire::put_route(&mut buf, black_box(r));
            }
            buf
        })
    });
    let mut buf = BytesMut::new();
    for r in &routes {
        wire::put_route(&mut buf, r);
    }
    let bytes = buf.freeze();
    g.bench_function("decode_64_routes", |b| {
        b.iter(|| {
            let mut slice = bytes.clone();
            let mut out = Vec::with_capacity(64);
            for _ in 0..64 {
                out.push(wire::get_route(&mut slice).unwrap());
            }
            out
        })
    });
    g.finish();
}

fn bench_bdd_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_bdd");
    // A realistic symbolic packet: union of 32 /24 destination prefixes.
    let mut m = BddManager::new(104);
    let prefixes: Vec<_> = (0..32u32)
        .map(|i| m.encode_prefix(0, 0x0a000000 | (i << 8), 24))
        .collect();
    let set = m.or_all(prefixes);
    g.bench_function("serialize_packet_set", |b| {
        b.iter(|| bdd_io::to_bytes(&m, black_box(set)))
    });
    let bytes = bdd_io::to_bytes(&m, set);
    g.bench_function("reencode_packet_set", |b| {
        // Cold destination manager each iteration: the real cross-worker
        // cost the first time a fragment reaches a worker.
        b.iter(|| {
            let mut dst = BddManager::new(104);
            bdd_io::from_bytes(&mut dst, black_box(&bytes)).unwrap()
        })
    });
    g.bench_function("and_packet_sets", |b| {
        let other = m.encode_prefix(0, 0x0a000000, 16);
        b.iter(|| m.and(black_box(set), black_box(other)))
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_trie");
    let trie: PrefixTrie<u32> = (0..1024u32)
        .map(|i| (Prefix::new(Ipv4Addr(0x0a000000 | (i << 8)), 24), i))
        .collect();
    g.bench_function("lpm_lookup_1k_entries", |b| {
        b.iter(|| trie.lookup(black_box(Ipv4Addr(0x0a00f007))))
    });
    g.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_bgp");
    let candidates: Vec<s2_routing::bgp::Candidate> = (0..16)
        .map(|i| s2_routing::bgp::Candidate {
            route: sample_route(i),
            peer: Some(Ipv4Addr(0xac100000 + i)),
            session: i,
        })
        .collect();
    g.bench_function("select_multipath_16", |b| {
        b.iter(|| s2_routing::bgp::select_multipath(black_box(candidates.clone()), 8))
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_partition");
    g.sample_size(10);
    let ft = s2_topogen::fattree::generate(s2_topogen::fattree::FatTreeParams::new(10));
    let loads = s2_partition::estimate::estimate_loads(&ft.topology);
    g.bench_function("greedy_kl_fattree10_8way", |b| {
        b.iter(|| {
            s2_partition::greedy::partition(
                &ft.topology,
                &loads,
                8,
                &s2_partition::greedy::GreedyOptions::default(),
            )
        })
    });
    g.finish();
}

fn bench_merge_ablation(c: &mut Criterion) {
    use s2_baselines::{simulate_control_plane, MonolithicOptions};
    use s2_dataplane::{forward, Fib, ForwardOptions, NodePredicates, PacketSpace};
    use s2_routing::NetworkModel;

    let mut g = c.benchmark_group("ablation_fragment_merging");
    g.sample_size(10);
    // All-pair injection over the DCN-like dense fabric is where merging
    // matters: paths converge at every layer.
    let ft = s2_topogen::fattree::generate(s2_topogen::fattree::FatTreeParams::new(6));
    let sources: Vec<_> = (0..6).flat_map(|p| (0..3).map(move |e| (p, e))).collect();
    let srcs: Vec<_> = sources.iter().map(|&(p, e)| ft.edge(p, e)).collect();
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let (rib, _) = simulate_control_plane(&model, &MonolithicOptions::default()).unwrap();
    let space = PacketSpace::new(0);
    let mut mgr = space.manager();
    let preds: Vec<NodePredicates> = model
        .topology
        .nodes()
        .map(|n| NodePredicates::compile(&model, n, &Fib::from_rib(rib.node(n)), &space, &mut mgr))
        .collect();
    let inject = space.dst_in(&mut mgr, "10.0.0.0/8".parse::<Prefix>().unwrap());

    for (name, no_merge) in [("merged", false), ("unmerged", true)] {
        let opts = ForwardOptions {
            no_merge,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                forward(
                    &model.topology,
                    &preds,
                    &space,
                    &mut mgr,
                    srcs.iter().map(|&s| (s, inject)).collect(),
                    black_box(&opts),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_bdd_serialize,
    bench_trie,
    bench_bgp,
    bench_partition,
    bench_merge_ablation
);
criterion_main!(benches);
