//! Per-figure experiment drivers (§5 of the paper).
//!
//! Every function regenerates one figure's data as a [`Table`]. Shared
//! runners execute the three systems — the monolithic baseline
//! ("batfish"), the compression baseline ("bonsai") and S2 — under
//! identical workloads and report time plus modelled peak memory.

use crate::workloads::{self, Workload};
use crate::{fmt_bytes, fmt_ms, Table};
use s2::{S2Options, S2Verifier, Scheme, VerificationRequest};
use s2_baselines::{run_dpv, simulate_control_plane, MonolithicOptions};
use s2_net::topology::NodeId;
use s2_partition::schemes;
use std::sync::Arc;
use s2_obs::Stopwatch;
use std::time::Duration;

/// Outcome of one system run.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Total wall-clock time.
    pub total: Duration,
    /// Control-plane time.
    pub cp_time: Duration,
    /// Predicate-compilation time.
    pub pred_time: Duration,
    /// Symbolic-forwarding time.
    pub fwd_time: Duration,
    /// Peak memory of the constrained unit: whole process for the
    /// monolithic baseline, max per-worker for S2, max per-quotient for
    /// Bonsai. `max(cp_peak, dpv_peak)`.
    pub peak_bytes: usize,
    /// Peak during control-plane simulation (route state) — the paper's
    /// memory bottleneck. At paper scale this dominates `peak_bytes`; at
    /// our scale the fixed BDD-table overhead of DPV can mask it, so the
    /// sharding/scale-out verdicts key off this number.
    pub cp_peak_bytes: usize,
    /// Peak during data-plane verification (BDD state).
    pub dpv_peak_bytes: usize,
    /// Total installed routes.
    pub total_routes: usize,
    /// Reachable pairs observed.
    pub reachable_pairs: usize,
    /// Unreachable pairs observed.
    pub unreachable_pairs: usize,
}

/// Runs the monolithic baseline (optionally with prefix sharding).
pub fn run_batfish(w: &Workload, shards: usize) -> RunOutcome {
    let t0 = Stopwatch::start();
    let opts = MonolithicOptions {
        shards,
        ..Default::default()
    };
    let (rib, cp) = simulate_control_plane(&w.model, &opts).expect("baseline converges");
    let sources: Vec<NodeId> = w.request.sources.clone();
    let dpv = run_dpv(
        &w.model,
        &rib,
        &sources,
        &w.request.expected,
        w.request.dst_space,
        None,
    )
    .expect("baseline DPV succeeds");
    RunOutcome {
        total: t0.elapsed(),
        cp_time: cp.elapsed,
        pred_time: dpv.pred_time,
        fwd_time: dpv.fwd_time,
        peak_bytes: cp.peak_route_bytes.max(dpv.bdd_peak_bytes),
        cp_peak_bytes: cp.peak_route_bytes,
        dpv_peak_bytes: dpv.bdd_peak_bytes,
        total_routes: rib.total_routes(),
        reachable_pairs: dpv.reachable_pairs,
        unreachable_pairs: dpv.unreachable_pairs.len(),
    }
}

/// Runs S2 with the given worker count / scheme / shard count.
pub fn run_s2(w: &Workload, workers: u32, shards: usize, scheme: Scheme) -> RunOutcome {
    let t0 = Stopwatch::start();
    let opts = S2Options {
        workers,
        shards,
        scheme,
        ..Default::default()
    };
    let verifier = S2Verifier::new(w.model.clone(), &opts).expect("model is valid");
    let report = verifier.verify(&w.request).expect("S2 run succeeds");
    verifier.shutdown();
    RunOutcome {
        total: t0.elapsed(),
        cp_time: report.cp.elapsed,
        pred_time: report.dpv.pred_time,
        fwd_time: report.dpv.fwd_time,
        peak_bytes: report.peak_worker_memory(),
        cp_peak_bytes: report.cp.max_worker_peak(),
        dpv_peak_bytes: report.dpv.per_worker_peak.iter().copied().max().unwrap_or(0),
        total_routes: report.rib.total_routes(),
        reachable_pairs: report.dpv.reachable_pairs,
        unreachable_pairs: report.dpv.unreachable_pairs.len(),
    }
}

/// Runs the Bonsai-style compression baseline (FatTree-only).
pub fn run_bonsai(k: usize, threads: usize) -> RunOutcome {
    let t0 = Stopwatch::start();
    let report = s2_baselines::bonsai_verify_fattree(
        s2_topogen::fattree::FatTreeParams::new(k),
        threads,
    )
    .expect("bonsai run succeeds");
    RunOutcome {
        total: t0.elapsed(),
        cp_time: Duration::ZERO,
        pred_time: Duration::ZERO,
        fwd_time: Duration::ZERO,
        peak_bytes: report.peak_bytes,
        cp_peak_bytes: report.peak_bytes,
        dpv_peak_bytes: report.peak_bytes,
        total_routes: 0,
        reachable_pairs: report.verified,
        unreachable_pairs: report.violations.len(),
    }
}

fn verdict(peak: usize, budget: usize) -> String {
    if peak > budget {
        "OOM".to_string()
    } else {
        "ok".to_string()
    }
}

/// Fig. 4 — verifying the real DCN: Batfish, Batfish + prefix sharding,
/// S2 without sharding, S2.
pub fn fig4() -> Table {
    let w = workloads::dcn(6, 8, 3);
    let batfish = run_batfish(&w, 1);
    let batfish_sharded = run_batfish(&w, 8);
    let s2_noshard = run_s2(&w, 8, 1, Scheme::Metis);
    let s2_full = run_s2(&w, 8, 8, Scheme::Metis);
    // The "100 GB logical server": slightly above the sharded baseline's
    // simulation peak, mirroring the paper's "memory still approaching the
    // limit". Verdicts key off the control-plane (route) peak — the
    // paper's bottleneck (at our tiny scale the fixed BDD-table overhead
    // of DPV would otherwise mask the effect).
    let budget = batfish_sharded.cp_peak_bytes * 3 / 2;

    let mut t = Table::new(
        format!("Fig 4: verify {} (time / peak memory per server)", w.name),
        vec!["system", "time", "cp", "dpv", "cp peak", "dpv peak", "verdict"],
    );
    for (name, o) in [
        ("batfish", &batfish),
        ("batfish+sharding", &batfish_sharded),
        ("s2-8 w/o sharding", &s2_noshard),
        ("s2-8", &s2_full),
    ] {
        t.push(vec![
            name.into(),
            fmt_ms(o.total),
            fmt_ms(o.cp_time),
            fmt_ms(o.pred_time + o.fwd_time),
            fmt_bytes(o.cp_peak_bytes),
            fmt_bytes(o.dpv_peak_bytes),
            verdict(o.cp_peak_bytes, budget),
        ]);
    }
    t.note(format!(
        "server budget = 1.5x sharded-baseline simulation peak = {} (the paper's fixed 100GB heap)",
        fmt_bytes(budget)
    ));
    t.note(format!("total routes: {}", batfish.total_routes));
    t
}

/// Fig. 5 — FatTree sweep across systems.
pub fn fig5(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig 5: FatTree sweep (time / peak memory per logical server)",
        vec!["topology", "system", "time", "peak mem", "verdict"],
    );
    let mut budget = None;
    for &k in ks {
        let w = workloads::fattree(k);
        let batfish = run_batfish(&w, 1);
        let budget_v = *budget.get_or_insert(batfish.cp_peak_bytes * 8);
        let bonsai = run_bonsai(k, 4);
        // 20 prefix shards, matching the paper's setup (§5.4).
        let s2_1 = run_s2(&w, 1, 20, Scheme::Metis);
        let s2_4 = run_s2(&w, 4, 20, Scheme::Metis);
        let s2_8 = run_s2(&w, 8, 20, Scheme::Metis);
        for (name, o) in [
            ("batfish", &batfish),
            ("bonsai", &bonsai),
            ("s2-1", &s2_1),
            ("s2-4", &s2_4),
            ("s2-8", &s2_8),
        ] {
            t.push(vec![
                w.name.clone(),
                name.into(),
                fmt_ms(o.total),
                fmt_bytes(o.cp_peak_bytes),
                verdict(o.cp_peak_bytes, budget_v),
            ]);
        }
    }
    t.note("budget = 8x the smallest monolithic simulation peak (fixed logical-server heap); memory column = control-plane peak");
    t.note("paper shape: batfish OOMs first; bonsai stays tiny on memory but its time grows ~k^4; s2-8 handles the largest size");
    t
}

/// Fig. 6 — scaling out: S2 on a fixed FatTree with 1..16 workers.
pub fn fig6(k: usize, worker_counts: &[u32]) -> Table {
    let w = workloads::fattree(k);
    let mut t = Table::new(
        format!("Fig 6: {} with varying workers (S2, 5 shards)", w.name),
        vec!["workers", "time", "cp", "dpv", "per-worker peak"],
    );
    for &workers in worker_counts {
        let o = run_s2(&w, workers, 5, Scheme::Metis);
        t.push(vec![
            workers.to_string(),
            fmt_ms(o.total),
            fmt_ms(o.cp_time),
            fmt_ms(o.pred_time + o.fwd_time),
            fmt_bytes(o.cp_peak_bytes),
        ]);
    }
    t.note("paper shape: steep drops up to ~8 workers, then flattening");
    t.note(format!(
        "host parallelism: {} cores — time gains are capped at that factor; \
         the per-worker memory curve is hardware-independent",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    t
}

/// Fig. 7 — partition schemes on a FatTree and the DCN.
pub fn fig7(k: usize, workers: u32) -> Table {
    let mut t = Table::new(
        "Fig 7: partition schemes (S2)",
        vec![
            "network", "scheme", "total", "cp", "dpv", "peak mem", "edge-cut", "imbalance",
        ],
    );
    let fattree = workloads::fattree(k);
    let dcn = workloads::dcn(3, 4, 2);
    for w in [&fattree, &dcn] {
        for scheme in [
            Scheme::Metis,
            Scheme::Random { seed: 42 },
            Scheme::Expert,
            Scheme::Imbalanced,
            Scheme::CommHeavy,
        ] {
            let partition = schemes::compute(&w.model.topology, workers, scheme);
            let cut = partition.edge_cut(&w.model.topology);
            let loads = s2_partition::estimate::estimate_loads(&w.model.topology);
            let imb = partition.load_imbalance(&loads);
            let o = run_s2(w, workers, 5, scheme);
            t.push(vec![
                w.name.clone(),
                scheme.name().into(),
                fmt_ms(o.total),
                fmt_ms(o.cp_time),
                fmt_ms(o.pred_time + o.fwd_time),
                fmt_bytes(o.peak_bytes),
                cut.to_string(),
                format!("{imb:.2}"),
            ]);
        }
    }
    t.note("paper shape: metis/random/expert within a band; imbalanced far worse; comm-heavy slightly worse than random");
    t
}

/// Runs only S2's distributed control-plane simulation (Figs. 8 and 9
/// measure the *simulation*, not full verification).
pub fn run_s2_cp(w: &Workload, workers: u32, shards: usize) -> RunOutcome {
    let t0 = Stopwatch::start();
    let opts = S2Options {
        workers,
        shards,
        ..Default::default()
    };
    let verifier = S2Verifier::new(w.model.clone(), &opts).expect("model is valid");
    let (rib, cp, _) = verifier.simulate().expect("simulation converges");
    verifier.shutdown();
    RunOutcome {
        total: t0.elapsed(),
        cp_time: cp.elapsed,
        peak_bytes: cp.max_worker_peak(),
        cp_peak_bytes: cp.max_worker_peak(),
        total_routes: rib.total_routes(),
        ..Default::default()
    }
}

/// Fig. 8 — prefix sharding on/off across FatTree sizes (simulation time
/// and per-worker peak memory).
pub fn fig8(ks: &[usize], workers: u32) -> Table {
    let mut t = Table::new(
        "Fig 8: control-plane simulation, sharding on/off (S2)",
        vec!["topology", "sharding", "time", "per-worker peak", "verdict"],
    );
    let results: Vec<(String, RunOutcome, RunOutcome)> = ks
        .iter()
        .map(|&k| {
            let w = workloads::fattree(k);
            let off = run_s2_cp(&w, workers, 1);
            let on = run_s2_cp(&w, workers, 10);
            (w.name, off, on)
        })
        .collect();
    // Budget just above the second-largest size's unsharded peak — the
    // paper's situation exactly: the largest topology is feasible only
    // with sharding, the one below fits either way.
    let budget = if results.len() >= 2 {
        results[results.len() - 2].1.peak_bytes * 6 / 5
    } else {
        results[0].1.peak_bytes * 2
    };
    for (name, off, on) in &results {
        for (mode, o) in [("off", off), ("10 shards", on)] {
            t.push(vec![
                name.clone(),
                mode.into(),
                fmt_ms(o.total),
                fmt_bytes(o.peak_bytes),
                verdict(o.peak_bytes, budget),
            ]);
        }
    }
    t.note(format!(
        "budget = 1.2x the second-largest unsharded peak = {}",
        fmt_bytes(budget)
    ));
    t.note("paper shape: sharding cuts the peak everywhere and is required at the largest size");
    t
}

/// Fig. 9 — shard-count sweep on a fixed FatTree.
pub fn fig9(k: usize, workers: u32, shard_counts: &[usize]) -> Table {
    let w = workloads::fattree(k);
    let mut t = Table::new(
        format!(
            "Fig 9: control-plane simulation of {} with varying prefix shards (S2-{workers})",
            w.name
        ),
        vec!["shards", "time", "per-worker peak"],
    );
    for &shards in shard_counts {
        let o = run_s2_cp(&w, workers, shards);
        t.push(vec![
            shards.to_string(),
            fmt_ms(o.cp_time),
            fmt_bytes(o.peak_bytes),
        ]);
    }
    t.note("paper shape: with tight memory, more shards first help; past the knee extra rounds dominate");
    t
}

/// Fig. 10 — DPV comparison: all-pair and single-pair reachability.
pub fn fig10(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig 10: DPV time, batfish vs s2-4 (predicates + forwarding)",
        vec!["topology", "system", "all-pair pred", "all-pair fwd", "single-pair"],
    );
    for &k in ks {
        let w = workloads::fattree(k);

        // Monolithic: converge once, then time DPV phases.
        let (rib, _) = simulate_control_plane(&w.model, &MonolithicOptions::default()).unwrap();
        let sources: Vec<NodeId> = w.request.sources.clone();
        let all = run_dpv(&w.model, &rib, &sources, &w.request.expected, w.request.dst_space, None)
            .unwrap();
        let (sp_src, _) = (w.endpoints[0].0, ());
        let (sp_dst, sp_prefix) = {
            let last = w.endpoints.last().unwrap();
            (last.0, last.1[0])
        };
        let t_sp = Stopwatch::start();
        let _ = run_dpv(
            &w.model,
            &rib,
            &[sp_src],
            &[(sp_dst, vec![sp_prefix])],
            sp_prefix,
            None,
        )
        .unwrap();
        let batfish_sp = t_sp.elapsed();

        // S2: converge once, then time DPV phases on the fleet.
        let opts = S2Options {
            workers: 4,
            shards: 5,
            ..Default::default()
        };
        let verifier = S2Verifier::new(w.model.clone(), &opts).unwrap();
        let (s2_rib, _, _) = verifier.simulate().unwrap();
        let s2_rib = Arc::new(s2_rib);
        let s2_all = verifier.run_dpv_only(s2_rib.clone(), &w.request).unwrap();
        let t_sp2 = Stopwatch::start();
        let _ = verifier
            .run_dpv_only(
                s2_rib,
                &VerificationRequest::single_pair(sp_src, sp_dst, sp_prefix),
            )
            .unwrap();
        let s2_sp = t_sp2.elapsed();
        verifier.shutdown();

        t.push(vec![
            w.name.clone(),
            "batfish".into(),
            fmt_ms(all.pred_time),
            fmt_ms(all.fwd_time),
            fmt_ms(batfish_sp),
        ]);
        t.push(vec![
            w.name.clone(),
            "s2-4".into(),
            fmt_ms(s2_all.pred_time),
            fmt_ms(s2_all.fwd_time),
            fmt_ms(s2_sp),
        ]);
    }
    t.note("paper shape: s2 faster in both phases; speedup grows with size; even single-pair benefits (all workers forward in parallel)");
    t
}

/// Fig. 11 — path exploration when checking a single cross-pod pair on
/// FatTree4: every up-down path is traversed.
pub fn fig11() -> Table {
    use s2_dataplane::{forward, Fib, ForwardOptions, NodePredicates, PacketSpace};
    let w = workloads::fattree(4);
    let (rib, _) = simulate_control_plane(&w.model, &MonolithicOptions::default()).unwrap();
    let space = PacketSpace::new(0);
    let mut mgr = space.manager();
    let preds: Vec<NodePredicates> = w
        .model
        .topology
        .nodes()
        .map(|n| NodePredicates::compile(&w.model, n, &Fib::from_rib(rib.node(n)), &space, &mut mgr))
        .collect();
    let src = w.endpoints[0].0;
    let (dst, dst_prefix) = {
        let last = w.endpoints.last().unwrap();
        (last.0, last.1[0])
    };
    let inject = space.dst_in(&mut mgr, dst_prefix);
    let opts = ForwardOptions {
        record_trace: true,
        ..Default::default()
    };
    let res = forward(&w.model.topology, &preds, &space, &mut mgr, vec![(src, inject)], &opts);
    let arrived = res.arrived_at(&mut mgr, src, dst);

    let mut t = Table::new(
        format!(
            "Fig 11: forwarding steps checking {} -> {} on FatTree4",
            w.model.topology.name(src),
            w.model.topology.name(dst)
        ),
        vec!["step", "from", "to", "hop"],
    );
    for (i, step) in res.trace.iter().enumerate() {
        t.push(vec![
            (i + 1).to_string(),
            w.model.topology.name(step.from).to_string(),
            w.model.topology.name(step.to).to_string(),
            step.hops.to_string(),
        ]);
    }
    t.note(format!(
        "packet copies explore every ECMP path; destination reached: {}",
        !arrived.is_false()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batfish_and_s2_agree_on_fattree4() {
        let w = workloads::fattree(4);
        let b = run_batfish(&w, 1);
        let s = run_s2(&w, 2, 2, Scheme::Metis);
        assert_eq!(b.reachable_pairs, s.reachable_pairs);
        assert_eq!(b.unreachable_pairs, 0);
        assert_eq!(s.unreachable_pairs, 0);
        assert_eq!(b.total_routes, s.total_routes);
    }

    #[test]
    fn fig11_explores_multiple_paths() {
        let t = fig11();
        // Cross-pod traffic on FatTree4 fans over 2 aggs and 4 cores.
        assert!(t.rows.len() >= 6, "only {} steps", t.rows.len());
    }
}
