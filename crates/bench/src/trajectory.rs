//! The pinned performance trajectory: a FatTree sweep, timed per
//! phase at intra-worker thread widths 1 and 4, emitted as JSON
//! (`BENCH_PR10.json` at the repo root).
//!
//! Serialization is hand-rolled: the workspace deliberately carries no
//! JSON dependency, and the schema (`s2-bench-trajectory/v1`) is flat
//! enough that a small writer plus a minimal recursive-descent reader
//! (used by `repro --json --check`, and by CI's `bench-smoke` job) is
//! less code than a serde integration.

use crate::workloads::{self, Workload};
use s2::{S2Options, S2Verifier};
use s2_runtime::CacheStats;
use std::fmt::Write as _;
use s2_obs::Stopwatch;

/// Schema identifier embedded in (and required of) every trajectory file.
pub const SCHEMA: &str = "s2-bench-trajectory/v1";

/// One timed verification run at a fixed `(k, threads)` point.
#[derive(Debug, Clone)]
pub struct Entry {
    /// FatTree arity.
    pub k: usize,
    /// Switch count of the topology.
    pub nodes: usize,
    /// Intra-worker thread width.
    pub threads: usize,
    /// Worker count (fixed across the sweep).
    pub workers: u32,
    /// Control-plane wall-clock, milliseconds.
    pub cp_ms: f64,
    /// Predicate-compilation wall-clock, milliseconds.
    pub pred_ms: f64,
    /// Symbolic-forwarding wall-clock, milliseconds.
    pub fwd_ms: f64,
    /// End-to-end wall-clock, milliseconds.
    pub total_ms: f64,
    /// Largest BDD node-table high-water mark across workers.
    pub bdd_peak_nodes: usize,
    /// Peak modelled per-worker memory, bytes.
    pub peak_bytes: usize,
    /// Merged BDD cache counters of the DPV phase.
    pub bdd: CacheStats,
    /// Reachable `(src, dst)` pairs — a cross-width invariant.
    pub reachable_pairs: usize,
    /// Scratch-buffer reuses observed in the forwarding hot loop.
    pub scratch_reuses: u64,
}

/// A complete sweep plus the environment it ran in.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The stacked-PR number the measurement belongs to.
    pub pr: u32,
    /// CPUs visible to the process (speedups are bounded by this).
    pub host_cpus: usize,
    /// Workload family description.
    pub workload: String,
    /// The timed points, in sweep order.
    pub entries: Vec<Entry>,
    /// Optional resilience-sweep measurement (absent in older files —
    /// the schema stays `v1`, the block is validated when present).
    pub resilience: Option<ResiliencePoint>,
    /// Optional incremental-daemon measurement (absent in older files —
    /// the schema stays `v1`, the block is validated when present).
    pub daemon: Option<DaemonPoint>,
}

/// One incremental-daemon measurement: a single link-flap delta applied
/// to a warm `s2 daemon`, against the cold full re-verification cost of
/// the same snapshot, plus the warm-checkpoint restore latency.
#[derive(Debug, Clone)]
pub struct DaemonPoint {
    /// FatTree arity.
    pub k: usize,
    /// Worker count.
    pub workers: u32,
    /// Cold full verification (the warm-baseline build), milliseconds.
    pub cold_verify_ms: f64,
    /// Mean wall-clock of the two flap edges (down, up), milliseconds.
    pub delta_ms: f64,
    /// Checkpoint-restore latency on restart, milliseconds.
    pub restore_ms: f64,
    /// `cold_verify_ms / delta_ms`.
    pub speedup: f64,
    /// Mean wall-clock of the destination-scoped DPV drive alone
    /// (excluding warm control-plane replay), milliseconds per delta.
    pub scoped_delta_ms: f64,
    /// Mean fraction of `dst_space` the deltas actually perturbed —
    /// the packet space the scoped drive re-verified; everything else
    /// was spliced through from the baseline verdicts.
    pub changed_dst_fraction: f64,
    /// Wall-clock of one full telemetry scrape (controller registry
    /// plus fleet-pulled per-worker snapshots), milliseconds.
    pub scrape_ms: f64,
    /// p99 of the `daemon.delta.ms` SLO histogram after the flaps,
    /// milliseconds (whole-ms bucket resolution).
    pub delta_p99_ms: f64,
    /// Worker-lane `dpv.*` spans whose parent chain stitched back to
    /// the controller's `daemon.delta` span across the flap deltas.
    pub stitched_spans: u64,
}

/// Opens a daemon on a FatTree workload, applies one link flap, restarts
/// from the warm checkpoint, and extracts the trajectory metrics.
pub fn run_daemon(k: usize, workers: u32) -> DaemonPoint {
    use s2_runtime::admin::{AdminResponse, DeltaSpec};
    let w = workloads::fattree(k);
    let path =
        std::env::temp_dir().join(format!("s2-bench-daemon-{}-{k}.ckpt", std::process::id()));
    let cfg = || {
        let mut cfg = s2::DaemonConfig::new(
            w.model.topology.clone(),
            w.model.configs.iter().map(|c| (**c).clone()).collect(),
            w.request.clone(),
        );
        cfg.opts = S2Options { workers, ..Default::default() };
        cfg.checkpoint = Some(path.clone());
        cfg
    };
    let mut d = s2::Daemon::open(cfg()).expect("daemon opens");
    let cold_verify_ms = d.baseline_ms();
    // The daemon runs in-process, so the global metrics registry sees
    // its scoped-DPV counters; deltas around the flaps isolate this
    // measurement from whatever ran before.
    let reg = s2_obs::Registry::global();
    let runs0 = reg.counter("dpv.scoped.runs").get();
    let drive_us0 = reg.counter("dpv.scoped.drive_us").get();
    let permille0 = reg.counter("dpv.scoped.space_permille").get();
    // Trace the flaps so the emitted point can prove cross-process span
    // stitching: worker dpv.* spans must parent back to `daemon.delta`.
    let trace_was_on = s2_obs::trace::enabled();
    s2_obs::trace::set_enabled(true);
    let _ = s2_obs::trace::take_events();
    let mut flap = |delta: DeltaSpec| match d.apply(&delta).expect("no injected faults") {
        AdminResponse::Committed { ms, escalated, .. } => {
            assert!(!escalated, "a link flap must replay warm");
            ms
        }
        other => panic!("flap delta must commit, got {other:?}"),
    };
    let down_ms = flap(DeltaSpec::LinkDown { a: "pod0-edge0".into(), b: "pod0-agg0".into() });
    let up_ms = flap(DeltaSpec::LinkUp { a: "pod0-edge0".into(), b: "pod0-agg0".into() });
    let scrape_sw = Stopwatch::start();
    let _ = d.metrics();
    let scrape_ms = scrape_sw.elapsed().as_secs_f64() * 1e3;
    d.shutdown();
    let stitched_spans = count_stitched(&s2_obs::trace::take_events());
    s2_obs::trace::set_enabled(trace_was_on);
    let delta_ms = (down_ms + up_ms) / 2.0;
    // The daemon's SLO histogram is only fed by `Daemon::apply`, and the
    // flaps above are the only deltas this process applies, so the
    // accumulated p99 is this run's p99 (whole-ms bucket resolution).
    let delta_p99_ms = reg.histogram("daemon.delta.ms").snapshot().quantile(0.99) as f64;
    let runs = reg.counter("dpv.scoped.runs").get().saturating_sub(runs0);
    let drive_us = reg.counter("dpv.scoped.drive_us").get().saturating_sub(drive_us0);
    let permille = reg.counter("dpv.scoped.space_permille").get().saturating_sub(permille0);
    let scoped_delta_ms = if runs > 0 { drive_us as f64 / runs as f64 / 1e3 } else { 0.0 };
    let changed_dst_fraction = if runs > 0 { permille as f64 / runs as f64 / 1e3 } else { 0.0 };

    let d = s2::Daemon::open(cfg()).expect("daemon restarts");
    assert!(d.warm_start(), "the restart must restore the checkpoint");
    let restore_ms = d.restore_ms().unwrap_or(0.0);
    d.shutdown();
    let _ = std::fs::remove_file(&path);
    DaemonPoint {
        k,
        workers,
        cold_verify_ms,
        delta_ms,
        restore_ms,
        speedup: if delta_ms > 0.0 { cold_verify_ms / delta_ms } else { 0.0 },
        scoped_delta_ms,
        changed_dst_fraction,
        scrape_ms,
        delta_p99_ms,
        stitched_spans,
    }
}

/// Counts worker-lane `dpv.*` spans whose parent chain reaches the
/// controller's `daemon.delta` span — the cross-process stitching proof
/// carried by the daemon trajectory point.
fn count_stitched(events: &[s2_obs::trace::Event]) -> u64 {
    use std::collections::HashMap;
    let by_span: HashMap<u64, &s2_obs::trace::Event> =
        events.iter().filter(|e| e.span != 0).map(|e| (e.span, e)).collect();
    let reaches_delta = |mut parent: u64| {
        for _ in 0..64 {
            let Some(e) = by_span.get(&parent) else { return false };
            if s2_obs::trace::name_of(e.name) == "daemon.delta" {
                return true;
            }
            parent = e.parent;
        }
        false
    };
    events
        .iter()
        .filter(|e| {
            e.lane >= 1
                && s2_obs::trace::name_of(e.name).starts_with("dpv.")
                && reaches_delta(e.parent)
        })
        .count() as u64
}

/// One resilience-sweep measurement: every ≤`max_failures` link-failure
/// scenario re-verified over a warm runtime (`s2::sweep`), against the
/// serial-full yardstick of scenario-count × baseline time.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// FatTree arity.
    pub k: usize,
    /// Worker count.
    pub workers: u32,
    /// The `k` of "≤k link failures".
    pub max_failures: usize,
    /// Enumerated scenarios.
    pub scenarios: usize,
    /// Scenarios that degraded to `undetermined`.
    pub undetermined: usize,
    /// Warm-baseline wall-clock, milliseconds.
    pub baseline_ms: f64,
    /// Whole-sweep wall-clock, milliseconds.
    pub sweep_ms: f64,
    /// Scenarios resolved per second, baseline excluded.
    pub scenarios_per_sec: f64,
    /// Speedup over re-verifying every scenario cold.
    pub speedup_vs_serial_full: f64,
}

/// Runs the resilience sweep once and extracts the trajectory metrics.
pub fn run_resilience(k: usize, workers: u32, max_failures: usize) -> ResiliencePoint {
    let w = workloads::fattree(k);
    let opts = S2Options {
        workers,
        ..Default::default()
    };
    let verifier = S2Verifier::new(w.model.clone(), &opts).expect("model is valid");
    let report = verifier
        .sweep(
            &w.request,
            &s2::SweepOptions {
                max_failures,
                ..Default::default()
            },
        )
        .expect("sweep succeeds");
    verifier.shutdown();
    ResiliencePoint {
        k,
        workers,
        max_failures,
        scenarios: report.scenario_count(),
        undetermined: report.undetermined,
        baseline_ms: report.baseline_ms,
        sweep_ms: report.sweep_ms,
        scenarios_per_sec: report.scenarios_per_sec(),
        speedup_vs_serial_full: report.speedup_vs_serial_full(),
    }
}

/// Runs one verification of `w` and extracts the trajectory metrics.
fn run_point(w: &Workload, k: usize, workers: u32, threads: usize) -> Entry {
    let t0 = Stopwatch::start();
    let opts = S2Options {
        workers,
        intra_worker_threads: threads,
        ..Default::default()
    };
    let verifier = S2Verifier::new(w.model.clone(), &opts).expect("model is valid");
    let report = verifier.verify(&w.request).expect("S2 run succeeds");
    verifier.shutdown();
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    Entry {
        k,
        nodes: w.model.topology.node_count(),
        threads,
        workers,
        cp_ms: report.cp.elapsed.as_secs_f64() * 1e3,
        pred_ms: report.dpv.pred_time.as_secs_f64() * 1e3,
        fwd_ms: report.dpv.fwd_time.as_secs_f64() * 1e3,
        total_ms,
        bdd_peak_nodes: report.dpv.bdd_peak_nodes.max(report.cp.bdd_peak_nodes),
        peak_bytes: report.peak_worker_memory(),
        bdd: report.dpv.bdd_cache,
        reachable_pairs: report.dpv.reachable_pairs,
        scratch_reuses: report.dpv.traffic.scratch_reuses,
    }
}

/// Runs the pinned sweep: every `k` at every thread width, fixed worker
/// count. Sweep order is `(k, threads)` lexicographic so the emitted
/// file diffs cleanly between runs.
pub fn run_sweep(ks: &[usize], thread_widths: &[usize], workers: u32) -> Trajectory {
    let mut entries = Vec::new();
    for &k in ks {
        let w = workloads::fattree(k);
        for &threads in thread_widths {
            eprintln!("trajectory: FatTree{k} threads={threads} ...");
            entries.push(run_point(&w, k, workers, threads));
        }
    }
    Trajectory {
        pr: 10,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        workload: "fattree-sweep".to_string(),
        entries,
        resilience: None,
        daemon: None,
    }
}

/// CP speedup of the widest thread width over width 1, per `k`
/// (`(k, base_threads, wide_threads, speedup)`).
pub fn cp_speedups(t: &Trajectory) -> Vec<(usize, usize, usize, f64)> {
    let mut out = Vec::new();
    let ks: Vec<usize> = {
        let mut ks: Vec<usize> = t.entries.iter().map(|e| e.k).collect();
        ks.dedup();
        ks
    };
    for k in ks {
        let at_k: Vec<&Entry> = t.entries.iter().filter(|e| e.k == k).collect();
        let base = at_k.iter().find(|e| e.threads == 1);
        let wide = at_k.iter().max_by_key(|e| e.threads);
        if let (Some(base), Some(wide)) = (base, wide) {
            if wide.threads > 1 && wide.cp_ms > 0.0 {
                out.push((k, base.threads, wide.threads, base.cp_ms / wide.cp_ms));
            }
        }
    }
    out
}

use s2_obs::json::push_f64;

/// Renders the trajectory as the `s2-bench-trajectory/v1` JSON document.
pub fn to_json(t: &Trajectory) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    let _ = writeln!(o, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(o, "  \"pr\": {},", t.pr);
    let _ = writeln!(o, "  \"host\": {{ \"cpus\": {} }},", t.host_cpus);
    let _ = writeln!(o, "  \"workload\": \"{}\",", t.workload);
    if let Some(r) = &t.resilience {
        let _ = write!(
            o,
            "  \"resilience\": {{ \"k\": {}, \"workers\": {}, \"max_failures\": {}, \"scenarios\": {}, \"undetermined\": {},",
            r.k, r.workers, r.max_failures, r.scenarios, r.undetermined
        );
        o.push_str(" \"baseline_ms\": ");
        push_f64(&mut o, r.baseline_ms);
        o.push_str(", \"sweep_ms\": ");
        push_f64(&mut o, r.sweep_ms);
        o.push_str(", \"scenarios_per_sec\": ");
        push_f64(&mut o, r.scenarios_per_sec);
        o.push_str(", \"speedup_vs_serial_full\": ");
        push_f64(&mut o, r.speedup_vs_serial_full);
        o.push_str(" },\n");
    }
    if let Some(d) = &t.daemon {
        let _ = write!(o, "  \"daemon\": {{ \"k\": {}, \"workers\": {},", d.k, d.workers);
        o.push_str(" \"cold_verify_ms\": ");
        push_f64(&mut o, d.cold_verify_ms);
        o.push_str(", \"delta_ms\": ");
        push_f64(&mut o, d.delta_ms);
        o.push_str(", \"restore_ms\": ");
        push_f64(&mut o, d.restore_ms);
        o.push_str(", \"speedup\": ");
        push_f64(&mut o, d.speedup);
        o.push_str(", \"scoped_delta_ms\": ");
        push_f64(&mut o, d.scoped_delta_ms);
        o.push_str(", \"changed_dst_fraction\": ");
        push_f64(&mut o, d.changed_dst_fraction);
        o.push_str(", \"scrape_ms\": ");
        push_f64(&mut o, d.scrape_ms);
        o.push_str(", \"delta_p99_ms\": ");
        push_f64(&mut o, d.delta_p99_ms);
        let _ = write!(o, ", \"stitched_spans\": {}", d.stitched_spans);
        o.push_str(" },\n");
    }
    o.push_str("  \"entries\": [\n");
    for (i, e) in t.entries.iter().enumerate() {
        o.push_str("    {");
        let _ = write!(
            o,
            " \"k\": {}, \"nodes\": {}, \"threads\": {}, \"workers\": {},",
            e.k, e.nodes, e.threads, e.workers
        );
        o.push_str(" \"cp_ms\": ");
        push_f64(&mut o, e.cp_ms);
        o.push_str(", \"pred_ms\": ");
        push_f64(&mut o, e.pred_ms);
        o.push_str(", \"fwd_ms\": ");
        push_f64(&mut o, e.fwd_ms);
        o.push_str(", \"total_ms\": ");
        push_f64(&mut o, e.total_ms);
        let _ = write!(
            o,
            ", \"bdd_peak_nodes\": {}, \"peak_bytes\": {}, \"reachable_pairs\": {}, \"scratch_reuses\": {},",
            e.bdd_peak_nodes, e.peak_bytes, e.reachable_pairs, e.scratch_reuses
        );
        o.push_str("\n      \"bdd\": {");
        let b = &e.bdd;
        let _ = write!(
            o,
            " \"unique_lookups\": {}, \"unique_hits\": {}, \"unique_probe_misses\": {}, \"unique_resizes\": {}, \"bin_lookups\": {}, \"bin_hits\": {}, \"not_lookups\": {}, \"not_hits\": {}, \"memo_lookups\": {}, \"memo_hits\": {}, \"generation_clears\": {},",
            b.unique_lookups,
            b.unique_hits,
            b.unique_probe_misses,
            b.unique_resizes,
            b.bin_lookups,
            b.bin_hits,
            b.not_lookups,
            b.not_hits,
            b.memo_lookups,
            b.memo_hits,
            b.generation_clears
        );
        o.push_str(" \"unique_hit_rate\": ");
        push_f64(&mut o, b.unique_hit_rate());
        o.push_str(", \"bin_hit_rate\": ");
        push_f64(&mut o, b.bin_hit_rate());
        o.push_str(" }");
        o.push_str(" }");
        o.push_str(if i + 1 < t.entries.len() { ",\n" } else { "\n" });
    }
    o.push_str("  ],\n");
    o.push_str("  \"cp_speedups\": [\n");
    let speedups = cp_speedups(t);
    for (i, (k, base, wide, s)) in speedups.iter().enumerate() {
        let _ = write!(
            o,
            "    {{ \"k\": {k}, \"base_threads\": {base}, \"wide_threads\": {wide}, \"speedup\": "
        );
        push_f64(&mut o, *s);
        o.push_str(" }");
        o.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    o.push_str("  ]\n");
    o.push_str("}\n");
    o
}

// The JSON value type and parser grew up here and moved to the
// observability crate (shared with the metrics codec and the
// Chrome-trace validator); re-exported so existing callers keep
// working unchanged.
pub use s2_obs::json::{parse_json, Json};

/// Validates `text` against the `s2-bench-trajectory/v1` schema: required
/// top-level keys, a non-empty entry list, and per-entry numeric fields.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema key missing or not '{SCHEMA}'"));
    }
    doc.get("pr").and_then(Json::as_num).ok_or("missing numeric 'pr'")?;
    doc.get("host")
        .and_then(|h| h.get("cpus"))
        .and_then(Json::as_num)
        .ok_or("missing 'host.cpus'")?;
    doc.get("workload").and_then(Json::as_str).ok_or("missing 'workload'")?;
    let entries = doc.get("entries").and_then(Json::as_arr).ok_or("missing 'entries' array")?;
    if entries.is_empty() {
        return Err("'entries' is empty".to_string());
    }
    const ENTRY_NUMS: [&str; 10] = [
        "k",
        "nodes",
        "threads",
        "workers",
        "cp_ms",
        "pred_ms",
        "fwd_ms",
        "total_ms",
        "bdd_peak_nodes",
        "reachable_pairs",
    ];
    const BDD_NUMS: [&str; 6] = [
        "unique_lookups",
        "unique_hits",
        "unique_resizes",
        "bin_lookups",
        "bin_hits",
        "bin_hit_rate",
    ];
    for (i, e) in entries.iter().enumerate() {
        for key in ENTRY_NUMS {
            if e.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("entry {i}: missing numeric '{key}'"));
            }
        }
        let bdd = e.get("bdd").ok_or_else(|| format!("entry {i}: missing 'bdd'"))?;
        for key in BDD_NUMS {
            if bdd.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("entry {i}: missing numeric 'bdd.{key}'"));
            }
        }
    }
    if let Some(r) = doc.get("resilience") {
        const RES_NUMS: [&str; 9] = [
            "k",
            "workers",
            "max_failures",
            "scenarios",
            "undetermined",
            "baseline_ms",
            "sweep_ms",
            "scenarios_per_sec",
            "speedup_vs_serial_full",
        ];
        for key in RES_NUMS {
            if r.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("resilience: missing numeric '{key}'"));
            }
        }
        // Regression gate: a warm sweep slower than re-verifying every
        // scenario cold means the warm path has stopped paying for
        // itself — fail the check, don't just record the number.
        let speedup = r.get("speedup_vs_serial_full").and_then(Json::as_num).unwrap_or(0.0);
        if speedup <= 1.0 {
            return Err(format!(
                "resilience: speedup_vs_serial_full is {speedup} — the warm sweep \
                 must beat the serial-full yardstick (> 1.0)"
            ));
        }
    }
    if let Some(d) = doc.get("daemon") {
        const DAEMON_NUMS: [&str; 11] = [
            "k",
            "workers",
            "cold_verify_ms",
            "delta_ms",
            "restore_ms",
            "speedup",
            "scoped_delta_ms",
            "changed_dst_fraction",
            "scrape_ms",
            "delta_p99_ms",
            "stitched_spans",
        ];
        for key in DAEMON_NUMS {
            if d.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("daemon: missing numeric '{key}'"));
            }
        }
    }
    let speedups = doc.get("cp_speedups").and_then(Json::as_arr).ok_or("missing 'cp_speedups'")?;
    for (i, s) in speedups.iter().enumerate() {
        for key in ["k", "base_threads", "wide_threads", "speedup"] {
            if s.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("cp_speedups {i}: missing numeric '{key}'"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        let entry = |k: usize, threads: usize, cp_ms: f64| Entry {
            k,
            nodes: 20,
            threads,
            workers: 2,
            cp_ms,
            pred_ms: 1.5,
            fwd_ms: 2.5,
            total_ms: cp_ms + 4.0,
            bdd_peak_nodes: 1000,
            peak_bytes: 4096,
            bdd: CacheStats {
                unique_lookups: 100,
                unique_hits: 60,
                bin_lookups: 50,
                bin_hits: 25,
                ..Default::default()
            },
            reachable_pairs: 56,
            scratch_reuses: 7,
        };
        Trajectory {
            pr: 4,
            host_cpus: 1,
            workload: "fattree-sweep".to_string(),
            entries: vec![entry(4, 1, 10.0), entry(4, 4, 5.0)],
            resilience: None,
            daemon: None,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = to_json(&sample());
        validate(&json).expect("writer output passes the schema check");
    }

    #[test]
    fn resilience_block_validates_when_present() {
        let mut t = sample();
        t.resilience = Some(ResiliencePoint {
            k: 4,
            workers: 1,
            max_failures: 1,
            scenarios: 32,
            undetermined: 0,
            baseline_ms: 12.0,
            sweep_ms: 200.0,
            scenarios_per_sec: 160.0,
            speedup_vs_serial_full: 1.9,
        });
        let json = to_json(&t);
        validate(&json).expect("resilience block passes the schema check");
        let broken = json.replace("\"sweep_ms\"", "\"renamed_ms\"");
        assert!(validate(&broken).is_err());
    }

    #[test]
    fn resilience_speedup_below_one_fails_the_check() {
        let mut t = sample();
        t.resilience = Some(ResiliencePoint {
            k: 6,
            workers: 1,
            max_failures: 2,
            scenarios: 108,
            undetermined: 0,
            baseline_ms: 7.6,
            sweep_ms: 917.0,
            scenarios_per_sec: 117.0,
            speedup_vs_serial_full: 0.894,
        });
        let err = validate(&to_json(&t)).expect_err("a sub-1.0 warm sweep is a regression");
        assert!(err.contains("speedup_vs_serial_full"), "{err}");
    }

    #[test]
    fn daemon_block_validates_when_present() {
        let mut t = sample();
        t.daemon = Some(DaemonPoint {
            k: 8,
            workers: 2,
            cold_verify_ms: 900.0,
            delta_ms: 45.0,
            restore_ms: 30.0,
            speedup: 20.0,
            scoped_delta_ms: 9.0,
            changed_dst_fraction: 0.02,
            scrape_ms: 1.2,
            delta_p99_ms: 52.0,
            stitched_spans: 40,
        });
        let json = to_json(&t);
        validate(&json).expect("daemon block passes the schema check");
        let broken = json.replace("\"delta_ms\"", "\"renamed_ms\"");
        assert!(validate(&broken).is_err());
        let unscoped = json.replace("\"scoped_delta_ms\"", "\"renamed_ms\"");
        assert!(validate(&unscoped).is_err(), "scoped fields are required in the daemon block");
    }

    #[test]
    fn speedups_divide_base_by_wide() {
        let s = cp_speedups(&sample());
        assert_eq!(s.len(), 1);
        let (k, base, wide, speedup) = s[0];
        assert_eq!((k, base, wide), (4, 1, 4));
        assert!((speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parser_roundtrips_structures() {
        let doc = parse_json(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
        assert!(parse_json(r#"{"a": 01x}"#).is_err());
    }

    #[test]
    fn validate_flags_missing_fields() {
        assert!(validate("{}").is_err());
        let mut json = to_json(&sample());
        json = json.replace("\"cp_ms\"", "\"renamed\"");
        assert!(validate(&json).is_err());
        let wrong_schema = to_json(&sample()).replace(SCHEMA, "other/v9");
        assert!(validate(&wrong_schema).is_err());
    }
}
