//! Benchmark harness regenerating every figure of the S2 paper's
//! evaluation (§5) at laptop scale.
//!
//! The paper's testbed is five 64-core/500 GB servers split into 100 GB
//! "logical servers", with FatTrees up to k=90 (10125 switches). This
//! harness sweeps k=4..12 and models the logical server's heap with the
//! verifiers' built-in memory gauges (see DESIGN.md, substitutions 6–7).
//! Absolute numbers therefore differ from the paper; what must (and does)
//! hold is the *shape* of every figure: who wins, by what factor, and
//! where the crossovers fall. `cargo run -p bench --bin repro --release`
//! prints every table; `cargo bench` runs Criterion timings of the same
//! configurations.

pub mod figs;
pub mod trajectory;
pub mod workloads;

/// A printable result table (one per paper figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id and caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (calibration constants, verdict legend, ...).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            header: header.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Pretty-prints a byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Pretty-prints a duration in ms.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", vec!["a", "bbbb"]);
        t.push(vec!["xx".into(), "y".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("xx"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", vec!["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }
}
