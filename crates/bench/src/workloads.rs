//! Shared workload construction for the figure benchmarks.

use s2::{NetworkModel, VerificationRequest};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_topogen::dcn::{self, Dcn, DcnParams};
use s2_topogen::fattree::{self, FatTree, FatTreeParams};

/// A prepared workload: model + the all-pair reachability request over its
/// host-facing switches.
pub struct Workload {
    /// Display name (e.g. `FatTree8`).
    pub name: String,
    /// The resolved model.
    pub model: NetworkModel,
    /// The all-pair request.
    pub request: VerificationRequest,
    /// The endpoints, kept for single-pair queries.
    pub endpoints: Vec<(NodeId, Vec<Prefix>)>,
}

/// Builds a k-ary FatTree workload (k even). The paper's FatTree40..90 are
/// k=40..90; our sweep uses k=4..12 with the same structure.
pub fn fattree(k: usize) -> Workload {
    let ft = fattree::generate(FatTreeParams::new(k));
    let endpoints: Vec<(NodeId, Vec<Prefix>)> = (0..k)
        .flat_map(|p| {
            let ft = &ft;
            (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
        })
        .collect();
    let request = VerificationRequest::all_pair_reachability(
        endpoints.clone(),
        "10.0.0.0/8".parse().unwrap(),
    );
    let model = NetworkModel::build(ft.topology, ft.configs).expect("generated FatTree is valid");
    Workload {
        name: format!("FatTree{k}"),
        model,
        request,
        endpoints,
    }
}

/// Builds the synthetic DCN workload (the stand-in for the paper's real
/// datacenter, §5.3): `clusters` mixed 3/5-layer Clos clusters.
pub fn dcn(clusters: usize, tors: usize, width: usize) -> Workload {
    let d = dcn::generate(DcnParams::scaled(clusters, tors, width));
    let mut endpoints = Vec::new();
    for (c, cluster_tors) in d.tors.iter().enumerate() {
        for (t, &tor) in cluster_tors.iter().enumerate() {
            endpoints.push((tor, vec![Dcn::server_prefix(c, t)]));
        }
    }
    let request = VerificationRequest::all_pair_reachability(
        endpoints.clone(),
        "10.0.0.0/7".parse().unwrap(),
    );
    let name = format!("DCN({} nodes)", d.topology.node_count());
    let model = NetworkModel::build(d.topology, d.configs).expect("generated DCN is valid");
    Workload {
        name,
        model,
        request,
        endpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fattree_workload_shape() {
        let w = fattree(4);
        assert_eq!(w.model.topology.node_count(), 20);
        assert_eq!(w.endpoints.len(), 8);
        assert_eq!(w.request.pair_count(), 8 * 7);
    }

    #[test]
    fn dcn_workload_shape() {
        let w = dcn(2, 4, 2);
        assert!(w.name.starts_with("DCN("));
        assert_eq!(w.endpoints.len(), 8);
    }
}
