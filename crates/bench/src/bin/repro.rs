//! Regenerates every figure of the paper's evaluation and prints the
//! rows/series. Run with `--release`; pass figure ids (e.g. `fig5 fig9`)
//! to restrict, `--quick` for the small sweep.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # everything
//! cargo run -p bench --bin repro --release -- fig5    # one figure
//! ```

use bench::figs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let (fig5_ks, fig8_ks, fig6_workers, fig9_shards): (&[usize], &[usize], &[u32], &[usize]) =
        if quick {
            (&[4, 6], &[4, 6], &[1, 2, 4], &[1, 5, 10])
        } else {
            (&[4, 6, 8, 10], &[6, 8, 10], &[1, 2, 4, 8, 16], &[1, 2, 5, 10, 15, 20, 30])
        };

    if want("fig4") {
        print!("{}", figs::fig4().render());
    }
    if want("fig5") {
        print!("{}", figs::fig5(fig5_ks).render());
    }
    if want("fig6") {
        print!("{}", figs::fig6(10, fig6_workers).render());
    }
    if want("fig7") {
        print!("{}", figs::fig7(8, 4).render());
    }
    if want("fig8") {
        print!("{}", figs::fig8(fig8_ks, 4).render());
    }
    if want("fig9") {
        print!("{}", figs::fig9(8, 4, fig9_shards).render());
    }
    if want("fig10") {
        print!("{}", figs::fig10(&fig5_ks[..fig5_ks.len().min(3)]).render());
    }
    if want("fig11") {
        print!("{}", figs::fig11().render());
    }
}
