//! Regenerates every figure of the paper's evaluation and prints the
//! rows/series. Run with `--release`; pass figure ids (e.g. `fig5 fig9`)
//! to restrict, `--quick` for the small sweep.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # everything
//! cargo run -p bench --bin repro --release -- fig5    # one figure
//! ```
//!
//! `--json` switches to the performance-trajectory mode: a pinned
//! FatTree sweep at intra-worker thread widths 1 and 4, written as
//! `s2-bench-trajectory/v1` JSON:
//!
//! ```text
//! cargo run -p bench --bin repro --release -- --json                # k=4,6,8 -> BENCH_PR10.json
//! cargo run -p bench --bin repro --release -- --json --smoke       # k=4 only (CI)
//! cargo run -p bench --bin repro --release -- --json --out FILE    # custom path
//! cargo run -p bench --bin repro -- --json --check FILE            # validate only
//! ```
//!
//! `--trace-out FILE` / `--metrics-out FILE` switch to the observability
//! mode: one pinned FatTree verification (default k=4, 4 workers) with
//! structured tracing on, emitting a Chrome `trace_event` JSON and the
//! unified metrics snapshot (see `cargo xtask trace-check`).

use bench::{figs, trajectory, workloads};
use s2::{S2Options, S2Verifier};
use std::process::ExitCode;

/// Observability mode: one pinned FatTree repro with structured tracing
/// enabled, writing a Chrome `trace_event` JSON (`--trace-out`) and/or
/// the unified metrics snapshot (`--metrics-out`). Selected whenever
/// either flag is present:
///
/// ```text
/// cargo run -p bench --bin repro --release -- --trace-out t.json --metrics-out m.json
/// cargo run -p bench --bin repro --release -- --trace-out t.json --k 6 --workers 8
/// ```
fn run_obs_mode(args: &[String]) -> ExitCode {
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut k = 4usize;
    let mut workers = 4u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} needs a value")),
        };
        let parsed = match a.as_str() {
            "--trace-out" => value("--trace-out").map(|v| trace_out = Some(v)),
            "--metrics-out" => value("--metrics-out").map(|v| metrics_out = Some(v)),
            "--k" => value("--k").and_then(|v| {
                v.parse().map(|n| k = n).map_err(|e| format!("--k: {e}"))
            }),
            "--workers" => value("--workers").and_then(|v| {
                v.parse().map(|n| workers = n).map_err(|e| format!("--workers: {e}"))
            }),
            other => Err(format!("unknown obs mode flag: {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    if trace_out.is_some() {
        s2_obs::trace::set_enabled(true);
        s2_obs::recorder::install_panic_hook();
    }
    let w = workloads::fattree(k);
    let opts = S2Options {
        workers,
        shards: 3,
        ..Default::default()
    };
    let verifier = match S2Verifier::new(w.model.clone(), &opts) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("verifier: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match verifier.verify(&w.request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: {e}");
            return ExitCode::FAILURE;
        }
    };
    verifier.shutdown();
    if let Some(path) = &trace_out {
        let events = s2_obs::trace::take_events();
        let json = s2_obs::trace::export_chrome_trace(&events);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace: {} events -> {path}", events.len());
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, report.metrics.to_json()) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics: -> {path}");
    }
    println!("{}", report.summary());
    ExitCode::SUCCESS
}

fn run_json_mode(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {}
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => {
                    eprintln!("--check needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown --json mode flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = check {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match trajectory::validate(&text) {
                Ok(()) => {
                    println!("{path}: valid {}", trajectory::SCHEMA);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (ks, widths): (&[usize], &[usize]) = if smoke {
        (&[4], &[1, 2])
    } else {
        (&[4, 6, 8], &[1, 4])
    };
    let mut t = trajectory::run_sweep(ks, widths, 2);
    // Resilience point: every single-link-failure scenario over a warm
    // runtime, single worker (the configuration where warm replay beats
    // the serial-full yardstick cleanly).
    let res_k = if smoke { 4 } else { 6 };
    eprintln!("trajectory: resilience FatTree{res_k} k<=1 ...");
    t.resilience = Some(trajectory::run_resilience(res_k, 1, 1));
    // Daemon point: one link-flap delta on a warm daemon vs the cold
    // full re-verification of the same snapshot, plus restart latency.
    let daemon_k = if smoke { 4 } else { 8 };
    eprintln!("trajectory: daemon FatTree{daemon_k} link flap ...");
    t.daemon = Some(trajectory::run_daemon(daemon_k, 2));
    let json = trajectory::to_json(&t);
    if let Err(e) = trajectory::validate(&json) {
        eprintln!("internal error: emitted JSON fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for (k, base, wide, s) in trajectory::cp_speedups(&t) {
        println!("FatTree{k}: cp speedup x{s:.2} ({base} -> {wide} threads)");
    }
    if let Some(r) = &t.resilience {
        println!(
            "FatTree{}: resilience k<={} — {} scenarios ({} undetermined), x{:.2} vs serial full",
            r.k, r.max_failures, r.scenarios, r.undetermined, r.speedup_vs_serial_full
        );
    }
    if let Some(d) = &t.daemon {
        println!(
            "FatTree{}: daemon link flap {:.1} ms vs cold {:.1} ms — x{:.2}; restore {:.1} ms",
            d.k, d.delta_ms, d.cold_verify_ms, d.speedup, d.restore_ms
        );
        println!(
            "FatTree{}: scoped DPV drive {:.1} ms over {:.1}% of the dst space",
            d.k,
            d.scoped_delta_ms,
            d.changed_dst_fraction * 100.0
        );
        println!(
            "FatTree{}: telemetry scrape {:.1} ms, delta p99 {:.0} ms, {} stitched dpv spans",
            d.k, d.scrape_ms, d.delta_p99_ms, d.stitched_spans
        );
    }
    println!("wrote {out_path} ({} entries, host cpus: {})", t.entries.len(), t.host_cpus);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        return run_json_mode(&args);
    }
    if args.iter().any(|a| a == "--trace-out" || a == "--metrics-out") {
        return run_obs_mode(&args);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let (fig5_ks, fig8_ks, fig6_workers, fig9_shards): (&[usize], &[usize], &[u32], &[usize]) =
        if quick {
            (&[4, 6], &[4, 6], &[1, 2, 4], &[1, 5, 10])
        } else {
            (&[4, 6, 8, 10], &[6, 8, 10], &[1, 2, 4, 8, 16], &[1, 2, 5, 10, 15, 20, 30])
        };

    if want("fig4") {
        print!("{}", figs::fig4().render());
    }
    if want("fig5") {
        print!("{}", figs::fig5(fig5_ks).render());
    }
    if want("fig6") {
        print!("{}", figs::fig6(10, fig6_workers).render());
    }
    if want("fig7") {
        print!("{}", figs::fig7(8, 4).render());
    }
    if want("fig8") {
        print!("{}", figs::fig8(fig8_ks, 4).render());
    }
    if want("fig9") {
        print!("{}", figs::fig9(8, 4, fig9_shards).render());
    }
    if want("fig10") {
        print!("{}", figs::fig10(&fig5_ks[..fig5_ks.len().min(3)]).render());
    }
    if want("fig11") {
        print!("{}", figs::fig11().render());
    }
    ExitCode::SUCCESS
}
