//! Regenerates every figure of the paper's evaluation and prints the
//! rows/series. Run with `--release`; pass figure ids (e.g. `fig5 fig9`)
//! to restrict, `--quick` for the small sweep.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # everything
//! cargo run -p bench --bin repro --release -- fig5    # one figure
//! ```
//!
//! `--json` switches to the PR-4 performance-trajectory mode: a pinned
//! FatTree sweep at intra-worker thread widths 1 and 4, written as
//! `s2-bench-trajectory/v1` JSON:
//!
//! ```text
//! cargo run -p bench --bin repro --release -- --json                # k=4,6,8 -> BENCH_PR4.json
//! cargo run -p bench --bin repro --release -- --json --smoke       # k=4 only (CI)
//! cargo run -p bench --bin repro --release -- --json --out FILE    # custom path
//! cargo run -p bench --bin repro -- --json --check FILE            # validate only
//! ```

use bench::{figs, trajectory};
use std::process::ExitCode;

fn run_json_mode(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {}
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => {
                    eprintln!("--check needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown --json mode flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = check {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match trajectory::validate(&text) {
                Ok(()) => {
                    println!("{path}: valid {}", trajectory::SCHEMA);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (ks, widths): (&[usize], &[usize]) = if smoke {
        (&[4], &[1, 2])
    } else {
        (&[4, 6, 8], &[1, 4])
    };
    let t = trajectory::run_sweep(ks, widths, 2);
    let json = trajectory::to_json(&t);
    if let Err(e) = trajectory::validate(&json) {
        eprintln!("internal error: emitted JSON fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for (k, base, wide, s) in trajectory::cp_speedups(&t) {
        println!("FatTree{k}: cp speedup x{s:.2} ({base} -> {wide} threads)");
    }
    println!("wrote {out_path} ({} entries, host cpus: {})", t.entries.len(), t.host_cpus);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        return run_json_mode(&args);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let (fig5_ks, fig8_ks, fig6_workers, fig9_shards): (&[usize], &[usize], &[u32], &[usize]) =
        if quick {
            (&[4, 6], &[4, 6], &[1, 2, 4], &[1, 5, 10])
        } else {
            (&[4, 6, 8, 10], &[6, 8, 10], &[1, 2, 4, 8, 16], &[1, 2, 5, 10, 15, 20, 30])
        };

    if want("fig4") {
        print!("{}", figs::fig4().render());
    }
    if want("fig5") {
        print!("{}", figs::fig5(fig5_ks).render());
    }
    if want("fig6") {
        print!("{}", figs::fig6(10, fig6_workers).render());
    }
    if want("fig7") {
        print!("{}", figs::fig7(8, 4).render());
    }
    if want("fig8") {
        print!("{}", figs::fig8(fig8_ks, 4).render());
    }
    if want("fig9") {
        print!("{}", figs::fig9(8, 4, fig9_shards).render());
    }
    if want("fig10") {
        print!("{}", figs::fig10(&fig5_ks[..fig5_ks.len().min(3)]).render());
    }
    if want("fig11") {
        print!("{}", figs::fig11().render());
    }
    ExitCode::SUCCESS
}
