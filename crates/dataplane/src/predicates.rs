//! Port predicates: compiled forwarding and ACL behaviour of one node.
//!
//! For every node S2 precomputes (§4.3):
//!
//! * `fwd[p]` — packets forwarded out port `p` (longest-prefix-match
//!   semantics compiled away),
//! * `local` — packets that have arrived (destination held by the node),
//! * `drop`  — packets discarded (no route, or a discard route),
//! * `acl_in[p]` / `acl_out[p]` — packets permitted in/out of port `p`.
//!
//! Forwarding then reduces to the pure BDD transformation of Eq. (1):
//! `pkt ← pkt ∧ p1_in ∧ p2_fwd ∧ p2_out`.

use crate::fib::Fib;
use crate::packetspace::PacketSpace;
use s2_bdd::{Bdd, BddManager};
use s2_net::config::DeviceConfig;
use s2_net::topology::{InterfaceId, NodeId};
use s2_routing::NetworkModel;
use std::collections::BTreeMap;

/// The compiled data-plane behaviour of one node.
#[derive(Debug, Clone)]
pub struct NodePredicates {
    /// The node.
    pub node: NodeId,
    /// Forwarding predicate per egress port.
    pub fwd: BTreeMap<InterfaceId, Bdd>,
    /// Packets that terminate here (Arrive).
    pub local: Bdd,
    /// Packets dropped here (no matching route / discard route).
    pub drop: Bdd,
    /// Inbound ACL per port (TRUE when no ACL configured).
    pub acl_in: BTreeMap<InterfaceId, Bdd>,
    /// Outbound ACL per port (TRUE when no ACL configured).
    pub acl_out: BTreeMap<InterfaceId, Bdd>,
}

impl NodePredicates {
    /// Compiles `fib` plus the node's ACL bindings into predicates, using
    /// (and populating) the worker-local `manager`.
    ///
    /// The FIB's LPM semantics are compiled by walking entries longest
    /// prefix first and masking each entry with the union of everything
    /// more specific already seen.
    pub fn compile(
        model: &NetworkModel,
        node: NodeId,
        fib: &Fib,
        space: &PacketSpace,
        manager: &mut BddManager,
    ) -> Self {
        let _span = s2_obs::span!("dpv.compile_preds", fib.len());
        let mut fwd: BTreeMap<InterfaceId, Bdd> = BTreeMap::new();
        let mut local = Bdd::FALSE;
        let mut drop = Bdd::FALSE;
        let mut covered = Bdd::FALSE;

        for (prefix, entry) in fib.entries_longest_first() {
            let p = space.dst_in(manager, prefix);
            let effective = manager.diff(p, covered);
            covered = manager.or(covered, p);
            if effective.is_false() {
                continue;
            }
            if entry.is_local {
                local = manager.or(local, effective);
            } else if entry.is_discard() {
                drop = manager.or(drop, effective);
            } else {
                for port in &entry.egress {
                    let cur = fwd.entry(*port).or_insert(Bdd::FALSE);
                    *cur = manager.or(*cur, effective);
                }
            }
        }
        // Anything not covered by any FIB entry is dropped (no route).
        let unrouted = manager.not(covered);
        drop = manager.or(drop, unrouted);

        // ACL predicates from the interface bindings.
        let mut acl_in = BTreeMap::new();
        let mut acl_out = BTreeMap::new();
        let cfg: &DeviceConfig = &model.configs[node.index()];
        let ifcount = model.topology.interface_count(node);
        for i in 0..ifcount {
            let port = InterfaceId(i);
            let icfg = model.iface_config(node, port);
            let compile_acl = |name: &Option<String>, manager: &mut BddManager| -> Bdd {
                match name.as_ref().and_then(|n| cfg.acls.get(n)) {
                    Some(acl) => space.acl_permits(manager, acl),
                    None => Bdd::TRUE,
                }
            };
            let (inp, outp) = match icfg {
                Some(ic) => (
                    compile_acl(&ic.acl_in, manager),
                    compile_acl(&ic.acl_out, manager),
                ),
                None => (Bdd::TRUE, Bdd::TRUE),
            };
            acl_in.insert(port, inp);
            acl_out.insert(port, outp);
        }

        NodePredicates {
            node,
            fwd,
            local,
            drop,
            acl_in,
            acl_out,
        }
    }

    /// The inbound ACL for `port` (TRUE for unknown ports, e.g. injection).
    pub fn acl_in(&self, port: Option<InterfaceId>) -> Bdd {
        match port {
            Some(p) => self.acl_in.get(&p).copied().unwrap_or(Bdd::TRUE),
            None => Bdd::TRUE,
        }
    }

    /// The outbound ACL for `port`.
    pub fn acl_out(&self, port: InterfaceId) -> Bdd {
        self.acl_out.get(&port).copied().unwrap_or(Bdd::TRUE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::Fib;
    use s2_net::config::{BgpNeighbor, BgpProcess, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;
    use s2_net::policy::Protocol;
    use s2_routing::RibRoute;

    /// Minimal two-node model for predicate compilation.
    fn model() -> NetworkModel {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b);
        let mut ca = DeviceConfig::new("a", Vendor::A);
        ca.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 0), 31));
        let mut bgp_a = BgpProcess::new(1, Ipv4Addr::new(1, 1, 1, 1));
        bgp_a.networks.push(Network { prefix: "10.1.0.0/24".parse().unwrap() });
        bgp_a.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 1),
            remote_as: 2,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        ca.bgp = Some(bgp_a);
        let mut cb = DeviceConfig::new("b", Vendor::A);
        cb.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 1), 31));
        let mut bgp_b = BgpProcess::new(2, Ipv4Addr::new(1, 1, 1, 2));
        bgp_b.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 0),
            remote_as: 1,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cb.bgp = Some(bgp_b);
        NetworkModel::build(topo, vec![ca, cb]).unwrap()
    }

    fn rib(prefix: &str, egress: Vec<u16>, is_local: bool) -> RibRoute {
        RibRoute {
            prefix: prefix.parse().unwrap(),
            protocol: Protocol::Bgp,
            egress: egress.into_iter().map(InterfaceId).collect(),
            is_local,
            as_path_len: 0,
        }
    }

    #[test]
    fn lpm_shadowing_compiles_correctly() {
        let m = model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let fib = Fib::from_rib(&[
            rib("10.0.0.0/8", vec![0], false),
            rib("10.1.0.0/16", vec![], true), // local island inside /8
        ]);
        let p = NodePredicates::compile(&m, NodeId(0), &fib, &space, &mut mgr);

        let in_16 = space.dst_in(&mut mgr, "10.1.0.0/16".parse().unwrap());
        let in_8 = space.dst_in(&mut mgr, "10.0.0.0/8".parse().unwrap());

        // /16 space is local, not forwarded.
        assert_eq!(mgr.and(p.local, in_16), in_16);
        let fwd0 = p.fwd[&InterfaceId(0)];
        assert!(mgr.and(fwd0, in_16).is_false());
        // The rest of the /8 is forwarded.
        let rest = mgr.diff(in_8, in_16);
        assert_eq!(mgr.and(fwd0, rest), rest);
        // Outside the /8 everything drops.
        let outside = mgr.not(in_8);
        assert_eq!(mgr.and(p.drop, outside), outside);
    }

    #[test]
    fn discard_routes_feed_drop() {
        let m = model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let fib = Fib::from_rib(&[rib("10.0.0.0/8", vec![], false)]);
        let p = NodePredicates::compile(&m, NodeId(0), &fib, &space, &mut mgr);
        let in_8 = space.dst_in(&mut mgr, "10.0.0.0/8".parse().unwrap());
        assert_eq!(mgr.and(p.drop, in_8), in_8);
        assert!(p.fwd.is_empty());
    }

    #[test]
    fn default_acls_are_true() {
        let m = model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let p = NodePredicates::compile(&m, NodeId(0), &Fib::default(), &space, &mut mgr);
        assert!(p.acl_in(Some(InterfaceId(0))).is_true());
        assert!(p.acl_in(None).is_true());
        assert!(p.acl_out(InterfaceId(0)).is_true());
        // No FIB: everything drops.
        assert!(p.drop.is_true());
    }

    #[test]
    fn bound_acl_is_compiled() {
        let mut m = model();
        // Attach a deny-all ACL inbound on a's eth0.
        let mut cfg = (*m.configs[0]).clone();
        cfg.acls.insert("BLOCK".into(), s2_net::acl::Acl::default());
        cfg.interfaces[0].acl_in = Some("BLOCK".into());
        m.configs[0] = std::sync::Arc::new(cfg);

        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let p = NodePredicates::compile(&m, NodeId(0), &Fib::default(), &space, &mut mgr);
        assert!(p.acl_in(Some(InterfaceId(0))).is_false());
    }
}
