//! Symbolic packet forwarding (§4.3).
//!
//! The single-hop transformation ([`step`]) is shared by the monolithic
//! engine here and by the distributed S2 runtime: it consumes a
//! [`SymbolicPacket`] at a node and produces forwarded packets (one per
//! egress port with a non-empty set — ECMP copies the packet, which is how
//! all paths are explored) plus packets that reached a *final state*:
//!
//! * [`FinalKind::Arrive`] — destination held by the node,
//! * [`FinalKind::Exit`] — sent out an unconnected (edge) port,
//! * [`FinalKind::Blackhole`] — no route / discard route / ACL deny,
//! * [`FinalKind::Loop`] — TTL exhausted.

use crate::packetspace::PacketSpace;
use crate::predicates::NodePredicates;
use s2_bdd::{Bdd, BddManager};
use s2_net::topology::{InterfaceId, NodeId, Topology};
use std::collections::BTreeMap;

/// A symbolic packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicPacket {
    /// The node the packet was injected at.
    pub src: NodeId,
    /// The node currently holding the packet.
    pub node: NodeId,
    /// The port it arrived on (`None` right after injection).
    pub ingress: Option<InterfaceId>,
    /// The set of headers, as a BDD in the engine's manager.
    pub set: Bdd,
    /// Hops taken so far.
    pub hops: u16,
}

/// Terminal classification of a packet set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FinalKind {
    /// Arrived at a node holding the destination.
    Arrive,
    /// Left the network through an edge port.
    Exit,
    /// Dropped (no route, discard route, or ACL).
    Blackhole,
    /// Still circulating after `max_hops` — a forwarding loop.
    Loop,
}

/// A packet set that reached a final state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalPacket {
    /// Injection node.
    pub src: NodeId,
    /// Node where the final state was reached.
    pub node: NodeId,
    /// The terminal classification.
    pub kind: FinalKind,
    /// The header set.
    pub set: Bdd,
}

/// One traversed edge, for path reconstruction (Fig. 11 style output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Injection node of the packet.
    pub src: NodeId,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Hop count after the step.
    pub hops: u16,
}

/// Forwarding options.
#[derive(Debug, Clone, Default)]
pub struct ForwardOptions {
    /// TTL: a packet exceeding this many hops is classified as a Loop.
    /// `0` selects [`DEFAULT_MAX_HOPS`].
    pub max_hops: u16,
    /// Waypoint write rules: node → metadata bit set when the packet
    /// traverses that node.
    pub waypoint_bits: BTreeMap<NodeId, u16>,
    /// Record traversed edges in [`ForwardResult::trace`].
    pub record_trace: bool,
    /// Disable fragment merging (ablation only): fragments are processed
    /// path-by-path, reproducing the exponential ECMP blow-up the merge
    /// exists to prevent. Results are identical; only cost changes.
    pub no_merge: bool,
    /// Ports failed for the current scenario (resilience sweeps): traffic
    /// a FIB still sends out a failed port is finalized as a
    /// [`FinalKind::Blackhole`] instead of being forwarded. This models
    /// the *transient* window after a link failure, before the control
    /// plane reconverges.
    pub failed_ports: std::collections::BTreeSet<(NodeId, InterfaceId)>,
}

/// Default TTL.
pub const DEFAULT_MAX_HOPS: u16 = 32;

impl ForwardOptions {
    fn ttl(&self) -> u16 {
        if self.max_hops == 0 {
            DEFAULT_MAX_HOPS
        } else {
            self.max_hops
        }
    }
}

/// Output of one forwarding step.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Packets forwarded to neighboring nodes.
    pub forwarded: Vec<SymbolicPacket>,
    /// Packet sets that terminated at this node.
    pub finals: Vec<FinalPacket>,
    /// Edges traversed (only when tracing).
    pub trace: Vec<TraceStep>,
}

impl StepOutput {
    /// Empties the buffers, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        self.forwarded.clear();
        self.finals.clear();
        self.trace.clear();
    }
}

/// Executes one hop of symbolic forwarding at `pkt.node`, applying Eq. (1):
/// `pkt ← pkt ∧ p1_in ∧ p2_fwd ∧ p2_out`.
pub fn step(
    topology: &Topology,
    preds: &NodePredicates,
    space: &PacketSpace,
    manager: &mut BddManager,
    pkt: SymbolicPacket,
    opts: &ForwardOptions,
) -> StepOutput {
    let mut out = StepOutput::default();
    step_into(topology, preds, space, manager, pkt, opts, &mut out);
    out
}

/// [`step`] into a caller-owned [`StepOutput`], *appending* to its
/// buffers. Hot loops keep one `StepOutput` per worker and [`clear`]
/// (`StepOutput::clear`) it between switches, avoiding three Vec
/// allocations per step.
#[allow(clippy::too_many_arguments)]
pub fn step_into(
    topology: &Topology,
    preds: &NodePredicates,
    space: &PacketSpace,
    manager: &mut BddManager,
    pkt: SymbolicPacket,
    opts: &ForwardOptions,
    out: &mut StepOutput,
) {
    debug_assert_eq!(preds.node, pkt.node);
    let finalize = |kind: FinalKind, set: Bdd, out: &mut StepOutput| {
        if !set.is_false() {
            out.finals.push(FinalPacket {
                src: pkt.src,
                node: pkt.node,
                kind,
                set,
            });
        }
    };

    // Inbound ACL.
    let acl_in = preds.acl_in(pkt.ingress);
    let mut set = manager.and(pkt.set, acl_in);
    let denied = manager.diff(pkt.set, acl_in);
    finalize(FinalKind::Blackhole, denied, &mut *out);
    if set.is_false() {
        return;
    }

    // Waypoint write rule.
    if let Some(&bit) = opts.waypoint_bits.get(&pkt.node) {
        set = space.set_meta(manager, set, bit);
    }

    // Local delivery.
    let arrived = manager.and(set, preds.local);
    finalize(FinalKind::Arrive, arrived, &mut *out);
    let remaining = manager.diff(set, preds.local);
    if remaining.is_false() {
        return;
    }

    // Explicit drops.
    let dropped = manager.and(remaining, preds.drop);
    finalize(FinalKind::Blackhole, dropped, &mut *out);

    // Forwarding, one copy per egress port (ECMP explores all paths).
    for (&port, &fwd) in &preds.fwd {
        let egress_set = manager.and(remaining, fwd);
        if egress_set.is_false() {
            continue;
        }
        // A failed port drops everything the FIB still points at it.
        if !opts.failed_ports.is_empty() && opts.failed_ports.contains(&(pkt.node, port)) {
            finalize(FinalKind::Blackhole, egress_set, &mut *out);
            continue;
        }
        let acl_out = preds.acl_out(port);
        let permitted = manager.and(egress_set, acl_out);
        let blocked = manager.diff(egress_set, acl_out);
        finalize(FinalKind::Blackhole, blocked, &mut *out);
        if permitted.is_false() {
            continue;
        }
        match topology.peer_of(pkt.node, port) {
            None => finalize(FinalKind::Exit, permitted, &mut *out),
            Some((peer, peer_if)) => {
                if pkt.hops + 1 > opts.ttl() {
                    finalize(FinalKind::Loop, permitted, &mut *out);
                } else {
                    if opts.record_trace {
                        out.trace.push(TraceStep {
                            src: pkt.src,
                            from: pkt.node,
                            to: peer,
                            hops: pkt.hops + 1,
                        });
                    }
                    out.forwarded.push(SymbolicPacket {
                        src: pkt.src,
                        node: peer,
                        ingress: Some(peer_if),
                        set: permitted,
                        hops: pkt.hops + 1,
                    });
                }
            }
        }
    }
}

/// Result of a full forwarding run.
#[derive(Debug, Default)]
pub struct ForwardResult {
    /// Every packet set that reached a final state.
    pub finals: Vec<FinalPacket>,
    /// Total forwarding steps executed (work metric).
    pub steps: usize,
    /// Traversed edges (when tracing was enabled).
    pub trace: Vec<TraceStep>,
}

impl ForwardResult {
    /// Union of all `Arrive` sets at `node` injected at `src`.
    pub fn arrived_at(&self, manager: &mut BddManager, src: NodeId, node: NodeId) -> Bdd {
        let sets = self
            .finals
            .iter()
            .filter(|f| f.kind == FinalKind::Arrive && f.src == src && f.node == node)
            .map(|f| f.set)
            .collect::<Vec<_>>();
        manager.or_all(sets)
    }

    /// All finals of a given kind.
    pub fn of_kind(&self, kind: FinalKind) -> impl Iterator<Item = &FinalPacket> {
        self.finals.iter().filter(move |f| f.kind == kind)
    }
}

/// The merge key of a packet fragment: fragments with the same injection
/// source, location, ingress port and hop count are processed identically,
/// so their header sets can be unioned before the next hop. In ECMP-rich
/// fabrics this collapses the per-path fragment explosion (exponential in
/// depth) down to `O(nodes × sources × hops)`, and — in the distributed
/// engine — slashes the number of BDDs serialized across workers.
pub type PacketKey = (NodeId, NodeId, Option<InterfaceId>, u16);

/// The merge key of `pkt`.
pub fn packet_key(pkt: &SymbolicPacket) -> PacketKey {
    (pkt.src, pkt.node, pkt.ingress, pkt.hops)
}

/// Merges `pkt` into a level map, unioning header sets per [`PacketKey`].
pub fn merge_packet(
    manager: &mut BddManager,
    level: &mut std::collections::BTreeMap<PacketKey, Bdd>,
    pkt: SymbolicPacket,
) {
    let entry = level.entry(packet_key(&pkt)).or_insert(Bdd::FALSE);
    *entry = manager.or(*entry, pkt.set);
}

/// Runs the monolithic forwarding engine: injects each `(source, set)` and
/// processes fragments level-synchronously (by hop count), merging
/// same-context fragments between levels, until every set reaches a final
/// state.
///
/// The distributed runtime replaces this loop with per-worker level maps
/// and serialized cross-worker packets, but reuses [`step`] and the same
/// merge discipline, so both engines do identical symbolic work.
pub fn forward(
    topology: &Topology,
    preds: &[NodePredicates],
    space: &PacketSpace,
    manager: &mut BddManager,
    injections: Vec<(NodeId, Bdd)>,
    opts: &ForwardOptions,
) -> ForwardResult {
    let mut result = ForwardResult::default();
    let mut level: std::collections::BTreeMap<PacketKey, Bdd> = std::collections::BTreeMap::new();
    for (src, set) in injections {
        if !set.is_false() {
            merge_packet(
                manager,
                &mut level,
                SymbolicPacket {
                    src,
                    node: src,
                    ingress: None,
                    set,
                    hops: 0,
                },
            );
        }
    }

    if opts.no_merge {
        // Ablation path: plain BFS over individual fragments.
        let mut queue: std::collections::VecDeque<SymbolicPacket> = level
            .into_iter()
            .map(|((src, node, ingress, hops), set)| SymbolicPacket {
                src,
                node,
                ingress,
                set,
                hops,
            })
            .collect();
        while let Some(pkt) = queue.pop_front() {
            let out = step(topology, &preds[pkt.node.index()], space, manager, pkt, opts);
            result.steps += 1;
            result.finals.extend(out.finals);
            result.trace.extend(out.trace);
            queue.extend(out.forwarded);
        }
        return result;
    }

    while !level.is_empty() {
        let mut next = std::collections::BTreeMap::new();
        for ((src, node, ingress, hops), set) in std::mem::take(&mut level) {
            let pkt = SymbolicPacket {
                src,
                node,
                ingress,
                set,
                hops,
            };
            let out = step(topology, &preds[node.index()], space, manager, pkt, opts);
            result.steps += 1;
            result.finals.extend(out.finals);
            result.trace.extend(out.trace);
            for fwd in out.forwarded {
                merge_packet(manager, &mut next, fwd);
            }
        }
        level = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::Fib;
    use s2_net::config::{DeviceConfig, InterfaceConfig, StaticRoute, Vendor};
    use s2_net::policy::Protocol;
    use s2_net::{Ipv4Addr, Prefix};
    use s2_routing::{NetworkModel, RibRoute};

    /// Chain a—b—c. a forwards 10.9.0.0/16 to b, b to c, c holds it.
    fn chain_model() -> NetworkModel {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        topo.connect(a, b);
        topo.connect(b, c);
        let mk = |name: &str, ifaces: Vec<(&str, Ipv4Addr)>| {
            let mut cfg = DeviceConfig::new(name, Vendor::A);
            for (n, addr) in ifaces {
                cfg.interfaces.push(InterfaceConfig::new(n, addr, 31));
            }
            cfg
        };
        let ip = Ipv4Addr::new;
        NetworkModel::build(
            topo,
            vec![
                mk("a", vec![("e0", ip(172, 16, 0, 0))]),
                mk("b", vec![("e0", ip(172, 16, 0, 1)), ("e1", ip(172, 16, 1, 0))]),
                mk("c", vec![("e0", ip(172, 16, 1, 1))]),
            ],
        )
        .unwrap()
    }

    fn rib(prefix: &str, egress: Vec<u16>, is_local: bool) -> RibRoute {
        RibRoute {
            prefix: prefix.parse().unwrap(),
            protocol: Protocol::Bgp,
            egress: egress.into_iter().map(InterfaceId).collect(),
            is_local,
            as_path_len: 0,
        }
    }

    fn compile_all(model: &NetworkModel, ribs: Vec<Vec<RibRoute>>, space: &PacketSpace, mgr: &mut BddManager) -> Vec<NodePredicates> {
        ribs.iter()
            .enumerate()
            .map(|(i, r)| {
                let fib = Fib::from_rib(r);
                NodePredicates::compile(model, NodeId(i as u32), &fib, space, mgr)
            })
            .collect()
    }

    #[test]
    fn end_to_end_arrival() {
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &ForwardOptions::default());
        let arrived = res.arrived_at(&mut mgr, NodeId(0), NodeId(2));
        assert_eq!(arrived, inject);
        assert_eq!(res.of_kind(FinalKind::Loop).count(), 0);
        assert_eq!(res.steps, 3);
    }

    #[test]
    fn unrouted_packets_blackhole_at_first_hop() {
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "11.0.0.0/8".parse().unwrap());
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &ForwardOptions::default());
        let bh: Vec<_> = res.of_kind(FinalKind::Blackhole).collect();
        assert_eq!(bh.len(), 1);
        assert_eq!(bh[0].node, NodeId(0));
        assert_eq!(bh[0].set, inject);
    }

    #[test]
    fn forwarding_loop_hits_ttl() {
        // a and b forward the prefix to each other.
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![0], false)], // back to a!
                vec![],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        let opts = ForwardOptions { max_hops: 6, ..Default::default() };
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &opts);
        let loops: Vec<_> = res.of_kind(FinalKind::Loop).collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].set, inject);
    }

    #[test]
    fn ecmp_copies_explore_both_paths() {
        // b has two egress ports for the prefix (e0 back to a, e1 to c):
        // both copies are explored; the one to c arrives, the one to a is
        // dropped there (a has no route for it in this setup).
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![],
                vec![rib("10.9.0.0/16", vec![0, 1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(1), inject)], &ForwardOptions::default());
        let arrived = res.arrived_at(&mut mgr, NodeId(1), NodeId(2));
        assert_eq!(arrived, inject);
        let bh = res.of_kind(FinalKind::Blackhole).next().unwrap();
        assert_eq!(bh.node, NodeId(0));
    }

    #[test]
    fn waypoint_bit_is_written() {
        let model = chain_model();
        let space = PacketSpace::new(1);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let dst = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        let clear = space.meta_clear(&mut mgr);
        let inject = mgr.and(dst, clear);
        let mut opts = ForwardOptions::default();
        opts.waypoint_bits.insert(NodeId(1), 0); // waypoint = b
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &opts);
        let arrived = res.arrived_at(&mut mgr, NodeId(0), NodeId(2));
        assert!(!arrived.is_false());
        // Every arrived header passed through b: bit 0 is set.
        let with_bit = space.with_meta(&mut mgr, arrived, 0);
        assert_eq!(with_bit, arrived);
    }

    #[test]
    fn trace_records_edges() {
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        let opts = ForwardOptions { record_trace: true, ..Default::default() };
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &opts);
        assert_eq!(res.trace.len(), 2);
        assert_eq!((res.trace[0].from, res.trace[0].to), (NodeId(0), NodeId(1)));
        assert_eq!((res.trace[1].from, res.trace[1].to), (NodeId(1), NodeId(2)));
    }

    #[test]
    fn failed_port_blackholes_transient_traffic() {
        let model = chain_model();
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds = compile_all(
            &model,
            vec![
                vec![rib("10.9.0.0/16", vec![0], false)],
                vec![rib("10.9.0.0/16", vec![1], false)],
                vec![rib("10.9.0.0/16", vec![], true)],
            ],
            &space,
            &mut mgr,
        );
        let inject = space.dst_in(&mut mgr, "10.9.0.0/16".parse().unwrap());
        // Fail the b—c link at b's egress: the stale FIB still points
        // there, so the whole set blackholes at b.
        let mut opts = ForwardOptions::default();
        opts.failed_ports.insert((NodeId(1), InterfaceId(1)));
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), inject)], &opts);
        assert!(res.arrived_at(&mut mgr, NodeId(0), NodeId(2)).is_false());
        let bh: Vec<_> = res.of_kind(FinalKind::Blackhole).collect();
        assert_eq!(bh.len(), 1);
        assert_eq!(bh[0].node, NodeId(1));
        assert_eq!(bh[0].set, inject);
    }

    #[test]
    fn static_route_fields_are_modelled() {
        // Coverage for StaticRoute in model-building combination with
        // forwarding inputs (egress resolution happens in s2-routing).
        let s = StaticRoute {
            prefix: "0.0.0.0/0".parse::<Prefix>().unwrap(),
            next_hop: None,
        };
        assert!(s.next_hop.is_none());
    }
}
