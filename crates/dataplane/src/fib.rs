//! FIB construction: from a node's final RIB to longest-prefix-match
//! forwarding state.

use s2_net::topology::InterfaceId;
use s2_net::{Ipv4Addr, Prefix, PrefixTrie};
use s2_routing::RibRoute;

/// One FIB entry: the forwarding decision for a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    /// ECMP egress interfaces; empty means local delivery or discard.
    pub egress: Vec<InterfaceId>,
    /// Whether packets matching this entry have arrived at their
    /// destination (connected subnet or locally originated prefix).
    pub is_local: bool,
}

impl FibEntry {
    /// Whether packets matching this entry are dropped.
    pub fn is_discard(&self) -> bool {
        self.egress.is_empty() && !self.is_local
    }
}

/// A node's FIB: an LPM structure over its winning routes.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    trie: PrefixTrie<FibEntry>,
}

impl Fib {
    /// Builds the FIB from the node's final (already distance-merged) RIB.
    pub fn from_rib(routes: &[RibRoute]) -> Self {
        let mut trie = PrefixTrie::new();
        for r in routes {
            trie.insert(
                r.prefix,
                FibEntry {
                    egress: r.egress.clone(),
                    is_local: r.is_local,
                },
            );
        }
        Fib { trie }
    }

    /// Number of FIB entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Longest-prefix-match lookup for a concrete destination.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<(Prefix, &FibEntry)> {
        self.trie.lookup(dst)
    }

    /// Iterates entries in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &FibEntry)> {
        self.trie.iter()
    }

    /// Entries sorted by descending prefix length — the order the
    /// predicate builder consumes so "more specific shadows less specific"
    /// falls out of a running union (see `predicates`).
    pub fn entries_longest_first(&self) -> Vec<(Prefix, &FibEntry)> {
        let mut v: Vec<(Prefix, &FibEntry)> = self.iter().collect();
        v.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::policy::Protocol;

    fn rib(prefix: &str, egress: Vec<u16>, is_local: bool) -> RibRoute {
        RibRoute {
            prefix: prefix.parse().unwrap(),
            protocol: Protocol::Bgp,
            egress: egress.into_iter().map(InterfaceId).collect(),
            is_local,
            as_path_len: 0,
        }
    }

    #[test]
    fn lpm_lookup_prefers_specific() {
        let fib = Fib::from_rib(&[
            rib("10.0.0.0/8", vec![0], false),
            rib("10.1.0.0/16", vec![1], false),
        ]);
        assert_eq!(fib.len(), 2);
        let (p, e) = fib.lookup("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(p, "10.1.0.0/16".parse().unwrap());
        assert_eq!(e.egress, vec![InterfaceId(1)]);
        let (p, _) = fib.lookup("10.2.0.0".parse().unwrap()).unwrap();
        assert_eq!(p, "10.0.0.0/8".parse().unwrap());
        assert!(fib.lookup("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn discard_and_local_classification() {
        let local = FibEntry { egress: vec![], is_local: true };
        let discard = FibEntry { egress: vec![], is_local: false };
        let fwd = FibEntry { egress: vec![InterfaceId(0)], is_local: false };
        assert!(!local.is_discard());
        assert!(discard.is_discard());
        assert!(!fwd.is_discard());
    }

    #[test]
    fn longest_first_ordering() {
        let fib = Fib::from_rib(&[
            rib("10.0.0.0/8", vec![0], false),
            rib("10.1.1.0/24", vec![1], false),
            rib("10.1.0.0/16", vec![2], false),
        ]);
        let lens: Vec<u8> = fib.entries_longest_first().iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![24, 16, 8]);
    }
}
