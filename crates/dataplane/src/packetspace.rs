//! The symbolic packet header space.
//!
//! A packet header is a bit vector of `104 + m` Boolean variables exactly
//! as in §4.3 of the paper: the 5-tuple (dst IP, src IP, protocol, source
//! port, destination port) plus `m` metadata bits used by path-sensitive
//! queries (waypoints). One [`PacketSpace`] instance fixes the variable
//! layout shared by every BDD manager in a verification run.

use s2_bdd::{Bdd, BddManager};
use s2_net::acl::{Acl, AclAction};
use s2_net::{Ipv4Addr, Prefix};

/// Variable layout of the symbolic packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpace {
    /// Number of metadata bits appended after the 5-tuple.
    pub meta_bits: u16,
}

/// Bit offsets of the 5-tuple fields.
pub const DST_OFFSET: u16 = 0;
/// Source IP offset.
pub const SRC_OFFSET: u16 = 32;
/// IP protocol offset.
pub const PROTO_OFFSET: u16 = 64;
/// Source port offset.
pub const SPORT_OFFSET: u16 = 72;
/// Destination port offset.
pub const DPORT_OFFSET: u16 = 88;
/// First metadata bit.
pub const META_OFFSET: u16 = 104;

impl PacketSpace {
    /// A packet space with `meta_bits` metadata bits.
    pub fn new(meta_bits: u16) -> Self {
        PacketSpace { meta_bits }
    }

    /// Total number of BDD variables (104 + m).
    pub fn num_vars(&self) -> u16 {
        META_OFFSET + self.meta_bits
    }

    /// Creates a BDD manager sized for this space.
    pub fn manager(&self) -> BddManager {
        BddManager::new(self.num_vars())
    }

    /// The variable index of metadata bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn meta_var(&self, i: u16) -> u16 {
        assert!(i < self.meta_bits, "metadata bit {i} out of range");
        META_OFFSET + i
    }

    /// Packets whose destination lies in `prefix`.
    pub fn dst_in(&self, m: &mut BddManager, prefix: Prefix) -> Bdd {
        m.encode_prefix(DST_OFFSET, prefix.addr().0, prefix.len())
    }

    /// Packets whose source lies in `prefix`.
    pub fn src_in(&self, m: &mut BddManager, prefix: Prefix) -> Bdd {
        m.encode_prefix(SRC_OFFSET, prefix.addr().0, prefix.len())
    }

    /// Packets with the exact destination address `addr`.
    pub fn dst_is(&self, m: &mut BddManager, addr: Ipv4Addr) -> Bdd {
        m.encode_prefix(DST_OFFSET, addr.0, 32)
    }

    /// Compiles an ACL into the BDD of *permitted* packets.
    ///
    /// Entries are folded first-match-wins with an implicit deny, i.e.
    /// `permitted = ⋃ (permit_i ∧ ¬ ⋃_{j<i} match_j)`.
    pub fn acl_permits(&self, m: &mut BddManager, acl: &Acl) -> Bdd {
        let mut permitted = Bdd::FALSE;
        let mut matched = Bdd::FALSE;
        for e in &acl.entries {
            let src = m.encode_prefix(SRC_OFFSET, e.src.addr().0, e.src.len());
            let dst = m.encode_prefix(DST_OFFSET, e.dst.addr().0, e.dst.len());
            let mut cond = m.and(src, dst);
            if let Some(p) = e.proto {
                let pb = m.encode_eq(PROTO_OFFSET, 8, p as u64);
                cond = m.and(cond, pb);
            }
            if !e.src_ports.is_any() {
                let r = m.encode_range(SPORT_OFFSET, 16, e.src_ports.lo as u64, e.src_ports.hi as u64);
                cond = m.and(cond, r);
            }
            if !e.dst_ports.is_any() {
                let r = m.encode_range(DPORT_OFFSET, 16, e.dst_ports.lo as u64, e.dst_ports.hi as u64);
                cond = m.and(cond, r);
            }
            let effective = m.diff(cond, matched);
            if matches!(e.action, AclAction::Permit) {
                permitted = m.or(permitted, effective);
            }
            matched = m.or(matched, cond);
        }
        permitted
    }

    /// Sets metadata bit `i` to 1 in every header of `set` (the waypoint
    /// "write rule": `∃b. set` ∧ `b`).
    pub fn set_meta(&self, m: &mut BddManager, set: Bdd, i: u16) -> Bdd {
        let var = self.meta_var(i);
        let projected = m.exists(set, var);
        let bit = m.var(var);
        m.and(projected, bit)
    }

    /// Packets in `set` whose metadata bit `i` is 1.
    pub fn with_meta(&self, m: &mut BddManager, set: Bdd, i: u16) -> Bdd {
        let bit = m.var(self.meta_var(i));
        m.and(set, bit)
    }

    /// The constraint that all metadata bits are 0 (injected packets start
    /// with cleared metadata).
    pub fn meta_clear(&self, m: &mut BddManager) -> Bdd {
        let lits: Vec<Bdd> = (0..self.meta_bits).map(|i| m.nvar(self.meta_var(i))).collect();
        m.and_all(lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::acl::{AclEntry, PortRange};

    fn space() -> PacketSpace {
        PacketSpace::new(2)
    }

    /// Evaluates `f` against a concrete 5-tuple with all metadata bits 0.
    fn eval5(
        m: &BddManager,
        f: Bdd,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: u8,
        sport: u16,
        dport: u16,
    ) -> bool {
        let mut assign = vec![false; m.num_vars() as usize];
        for i in 0..32 {
            assign[(DST_OFFSET + i) as usize] = dst.bit(i as u8);
            assign[(SRC_OFFSET + i) as usize] = src.bit(i as u8);
        }
        for i in 0..8u16 {
            assign[(PROTO_OFFSET + i) as usize] = (proto >> (7 - i)) & 1 == 1;
        }
        for i in 0..16u16 {
            assign[(SPORT_OFFSET + i) as usize] = (sport >> (15 - i)) & 1 == 1;
            assign[(DPORT_OFFSET + i) as usize] = (dport >> (15 - i)) & 1 == 1;
        }
        m.eval(f, &assign)
    }

    #[test]
    fn layout_is_104_plus_m() {
        assert_eq!(space().num_vars(), 106);
        assert_eq!(PacketSpace::new(0).num_vars(), 104);
        assert_eq!(space().meta_var(1), 105);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn meta_var_bounds_checked() {
        space().meta_var(2);
    }

    #[test]
    fn dst_in_matches_prefix() {
        let s = space();
        let mut m = s.manager();
        let f = s.dst_in(&mut m, "10.0.0.0/8".parse().unwrap());
        let any = Ipv4Addr::new(1, 2, 3, 4);
        assert!(eval5(&m, f, any, Ipv4Addr::new(10, 9, 9, 9), 6, 1, 1));
        assert!(!eval5(&m, f, any, Ipv4Addr::new(11, 0, 0, 1), 6, 1, 1));
    }

    #[test]
    fn acl_matches_concrete_semantics() {
        let s = space();
        let mut m = s.manager();
        let acl = Acl {
            entries: vec![
                AclEntry {
                    action: AclAction::Deny,
                    src: Prefix::DEFAULT,
                    dst: "10.9.0.0/16".parse().unwrap(),
                    proto: Some(6),
                    src_ports: PortRange::ANY,
                    dst_ports: PortRange::exact(22),
                },
                AclEntry::any(AclAction::Permit),
            ],
        };
        let f = s.acl_permits(&mut m, &acl);
        // Cross-check against the concrete evaluator on a grid of probes.
        let addrs = [
            Ipv4Addr::new(10, 9, 1, 1),
            Ipv4Addr::new(10, 8, 1, 1),
            Ipv4Addr::new(192, 168, 0, 1),
        ];
        for src in addrs {
            for dst in addrs {
                for proto in [6u8, 17] {
                    for dport in [22u16, 80] {
                        let expect = acl.permits(src, dst, proto, 1234, dport);
                        assert_eq!(
                            eval5(&m, f, src, dst, proto, 1234, dport),
                            expect,
                            "src={src} dst={dst} proto={proto} dport={dport}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_acl_denies_all() {
        let s = space();
        let mut m = s.manager();
        let f = s.acl_permits(&mut m, &Acl::default());
        assert!(f.is_false());
    }

    #[test]
    fn meta_set_and_test() {
        let s = space();
        let mut m = s.manager();
        let clear = s.meta_clear(&mut m);
        // Initially bit 0 is 0 in the cleared space.
        assert!(s.with_meta(&mut m, clear, 0).is_false());
        let set = s.set_meta(&mut m, clear, 0);
        // After the write rule, every header has bit 0 = 1.
        let tested = s.with_meta(&mut m, set, 0);
        assert_eq!(tested, set);
        // Setting is idempotent.
        let set2 = s.set_meta(&mut m, set, 0);
        assert_eq!(set2, set);
        // Bit 1 is untouched (still 0).
        assert!(s.with_meta(&mut m, set, 1).is_false());
    }
}
