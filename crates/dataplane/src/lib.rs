//! # s2-dataplane
//!
//! Data-plane verification substrate: FIB construction, BDD port
//! predicates, symbolic packet forwarding and property checking — the DPV
//! half of the verifier (§4.3–4.4 of the S2 paper).
//!
//! * [`packetspace`] — the 104+m-bit symbolic header layout,
//! * [`fib`] — RIB → longest-prefix-match forwarding state,
//! * [`predicates`] — per-node forwarding/ACL predicates (`p_fwd`, `p_in`,
//!   `p_out`, local, drop),
//! * [`forward`] — the per-hop symbolic transformation and the monolithic
//!   BFS engine (the distributed runtime reuses the per-hop step),
//! * [`properties`] — the five query families: reachability, waypoint,
//!   multipath consistency, loop-freedom, blackhole-freedom.

#![deny(missing_docs)]

pub mod fib;
pub mod forward;
pub mod packetspace;
pub mod predicates;
pub mod properties;

pub use fib::{Fib, FibEntry};
pub use forward::{
    forward, merge_packet, packet_key, step, step_into, FinalKind, FinalPacket, ForwardOptions,
    ForwardResult, PacketKey, StepOutput, SymbolicPacket, TraceStep, DEFAULT_MAX_HOPS,
};
pub use packetspace::PacketSpace;
pub use predicates::NodePredicates;
pub use properties::{
    evaluate, multipath_consistency, verdict_delta, Query, QueryReport, VerdictDelta,
};
