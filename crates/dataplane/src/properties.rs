//! Property checking over forwarding results (§4.4).
//!
//! S2 supports five query types, all expressed over the final states of a
//! forwarding run: reachability, waypoint, multipath consistency,
//! loop-freedom and blackhole-freedom. A [`Query`] is the paper's 4-tuple
//! `(H, V_s, V_d, V_t)`.

use crate::forward::{FinalKind, ForwardResult};
use crate::packetspace::PacketSpace;
use s2_bdd::{Bdd, BddManager};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use std::collections::BTreeMap;

/// A verification query: which headers (`H`), injected where (`V_s`),
/// expected where (`V_d`), via which transit nodes (`V_t`).
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Constrain the destination address to this prefix (None = any).
    pub dst_in: Option<Prefix>,
    /// Constrain the source address to this prefix (None = any).
    pub src_in: Option<Prefix>,
    /// Injection nodes (`V_s`).
    pub sources: Vec<NodeId>,
    /// Destination nodes (`V_d`).
    pub dests: Vec<NodeId>,
    /// Transit (waypoint) nodes (`V_t`).
    pub transits: Vec<NodeId>,
}

impl Query {
    /// A reachability query from `src` to `dst` for headers destined into
    /// `dst_prefix`.
    pub fn reachability(src: NodeId, dst: NodeId, dst_prefix: Prefix) -> Self {
        Query {
            dst_in: Some(dst_prefix),
            src_in: None,
            sources: vec![src],
            dests: vec![dst],
            transits: Vec::new(),
        }
    }

    /// Compiles the header space `H` (including cleared metadata bits) in
    /// `manager`.
    pub fn header_set(&self, space: &PacketSpace, manager: &mut BddManager) -> Bdd {
        let mut h = space.meta_clear(manager);
        if let Some(p) = self.dst_in {
            let d = space.dst_in(manager, p);
            h = manager.and(h, d);
        }
        if let Some(p) = self.src_in {
            let s = space.src_in(manager, p);
            h = manager.and(h, s);
        }
        h
    }
}

/// Outcome of evaluating a query over a forwarding run.
#[derive(Debug)]
pub struct QueryReport {
    /// For each `(source, dest)` pair, the headers that arrived.
    pub reachable: BTreeMap<(NodeId, NodeId), Bdd>,
    /// Headers that hit a loop, per source.
    pub looped: BTreeMap<NodeId, Bdd>,
    /// Headers that blackholed, per source.
    pub blackholed: BTreeMap<NodeId, Bdd>,
    /// Waypoint violations: arrived headers that missed a transit node,
    /// per `(source, dest, transit)`.
    pub waypoint_violations: BTreeMap<(NodeId, NodeId, NodeId), Bdd>,
    /// Multipath-consistency violations per source: overlapping header
    /// sets that reached *different* final kinds.
    pub multipath_violations: BTreeMap<NodeId, Bdd>,
}

impl QueryReport {
    /// Whether any checked property was violated. Reachability itself is
    /// interpreted by the caller (an empty `reachable` entry may be the
    /// expected answer for an isolation query).
    pub fn has_forwarding_anomaly(&self) -> bool {
        !self.looped.is_empty()
            || !self.waypoint_violations.is_empty()
            || !self.multipath_violations.is_empty()
    }
}

/// Evaluates all property families over `result`.
///
/// `waypoint_bits` must be the same map given to the forwarding run;
/// metadata bit `b` set means "visited the node mapped to `b`".
pub fn evaluate(
    result: &ForwardResult,
    space: &PacketSpace,
    manager: &mut BddManager,
    query: &Query,
    waypoint_bits: &BTreeMap<NodeId, u16>,
) -> QueryReport {
    // Spans the whole verdict construction for this query: arrival,
    // waypoint, loop/blackhole, and multipath checks.
    let _span = s2_obs::span!("dpv.verdict", query.sources.len() * query.dests.len());
    let mut reachable = BTreeMap::new();
    let mut looped: BTreeMap<NodeId, Bdd> = BTreeMap::new();
    let mut blackholed: BTreeMap<NodeId, Bdd> = BTreeMap::new();
    let mut waypoint_violations = BTreeMap::new();

    for &src in &query.sources {
        for &dst in &query.dests {
            let arrived = result.arrived_at(manager, src, dst);
            if !arrived.is_false() {
                // Waypoint check: arrived headers whose transit bit is 0.
                for &t in &query.transits {
                    if let Some(&bit) = waypoint_bits.get(&t) {
                        let visited = space.with_meta(manager, arrived, bit);
                        let missed = manager.diff(arrived, visited);
                        if !missed.is_false() {
                            waypoint_violations.insert((src, dst, t), missed);
                        }
                    }
                }
                reachable.insert((src, dst), arrived);
            }
        }
        let loop_sets: Vec<Bdd> = result
            .of_kind(FinalKind::Loop)
            .filter(|f| f.src == src)
            .map(|f| f.set)
            .collect();
        let l = manager.or_all(loop_sets);
        if !l.is_false() {
            looped.insert(src, l);
        }
        let bh_sets: Vec<Bdd> = result
            .of_kind(FinalKind::Blackhole)
            .filter(|f| f.src == src)
            .map(|f| f.set)
            .collect();
        let b = manager.or_all(bh_sets);
        if !b.is_false() {
            blackholed.insert(src, b);
        }
    }

    let multipath_violations = multipath_consistency(result, space, manager, &query.sources);

    QueryReport {
        reachable,
        looped,
        blackholed,
        waypoint_violations,
        multipath_violations,
    }
}

/// Multipath consistency (Batfish's property, §4.4): for each source, if
/// two final packet sets overlap but have different final kinds, traffic on
/// one path succeeds while the same traffic on another path fails.
///
/// Metadata bits are existentially quantified away first — two fragments
/// that took different paths differ in waypoint bits even when they carry
/// the same 5-tuple, and the property is about the 5-tuple.
pub fn multipath_consistency(
    result: &ForwardResult,
    space: &PacketSpace,
    manager: &mut BddManager,
    sources: &[NodeId],
) -> BTreeMap<NodeId, Bdd> {
    let meta_vars: Vec<u16> = (0..space.meta_bits).map(|i| space.meta_var(i)).collect();
    let mut out = BTreeMap::new();
    for &src in sources {
        // Union of header sets per final kind.
        let mut by_kind: BTreeMap<FinalKind, Bdd> = BTreeMap::new();
        for f in result.finals.iter().filter(|f| f.src == src) {
            let stripped = manager.exists_all(f.set, meta_vars.iter().copied());
            let entry = by_kind.entry(f.kind).or_insert(Bdd::FALSE);
            *entry = manager.or(*entry, stripped);
        }
        let kinds: Vec<(FinalKind, Bdd)> = by_kind.into_iter().collect();
        let mut violation = Bdd::FALSE;
        for i in 0..kinds.len() {
            for j in (i + 1)..kinds.len() {
                let overlap = manager.and(kinds[i].1, kinds[j].1);
                violation = manager.or(violation, overlap);
            }
        }
        if !violation.is_false() {
            out.insert(src, violation);
        }
    }
    out
}

/// How one source's verdicts changed between a baseline run and a
/// failure-scenario run (resilience sweeps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerdictDelta {
    /// Sources with headers that blackhole under the scenario but not in
    /// the baseline.
    pub new_blackholes: Vec<NodeId>,
    /// Sources with headers that loop under the scenario but not in the
    /// baseline.
    pub new_loops: Vec<NodeId>,
    /// Sources whose baseline-arriving headers no longer all arrive.
    pub lost_arrivals: Vec<NodeId>,
}

impl VerdictDelta {
    /// Whether the scenario preserved every baseline verdict.
    pub fn is_clean(&self) -> bool {
        self.new_blackholes.is_empty() && self.new_loops.is_empty() && self.lost_arrivals.is_empty()
    }

    /// Total number of per-source regressions.
    pub fn regressions(&self) -> usize {
        self.new_blackholes.len() + self.new_loops.len() + self.lost_arrivals.len()
    }
}

/// Diffs two collections of serialized per-`(source, kind)` verdict sets
/// (the `DpvRunStats::verdict_sets` shape: metadata already stripped,
/// sorted, one union per key). Decoding happens into `manager`, which
/// must cover the packet-space variables the sets were built over.
///
/// Semantics per source: a *new* blackhole/loop is scenario-set ∧
/// ¬baseline-set ≠ ∅; a *lost* arrival is baseline-arrive ∧
/// ¬scenario-arrive ≠ ∅. Exit finals are ignored (edge ports do not
/// change meaning under internal link failures).
pub fn verdict_delta(
    manager: &mut BddManager,
    baseline: &[(NodeId, FinalKind, Vec<u8>)],
    scenario: &[(NodeId, FinalKind, Vec<u8>)],
) -> Result<VerdictDelta, String> {
    let decode = |sets: &[(NodeId, FinalKind, Vec<u8>)],
                      manager: &mut BddManager|
     -> Result<BTreeMap<(NodeId, FinalKind), Bdd>, String> {
        let mut out: BTreeMap<(NodeId, FinalKind), Bdd> = BTreeMap::new();
        for (src, kind, bytes) in sets {
            let set = s2_bdd::serialize::from_bytes(manager, bytes)
                .map_err(|e| format!("verdict set for ({src}, {kind:?}): {e}"))?;
            let entry = out.entry((*src, *kind)).or_insert(Bdd::FALSE);
            *entry = manager.or(*entry, set);
        }
        Ok(out)
    };
    let base = decode(baseline, manager)?;
    let scen = decode(scenario, manager)?;

    let mut delta = VerdictDelta::default();
    let mut srcs: Vec<NodeId> = base.keys().chain(scen.keys()).map(|(s, _)| *s).collect();
    srcs.sort_unstable();
    srcs.dedup();
    let lookup = |m: &BTreeMap<(NodeId, FinalKind), Bdd>, src: NodeId, kind: FinalKind| {
        m.get(&(src, kind)).copied().unwrap_or(Bdd::FALSE)
    };
    for src in srcs {
        for (kind, out) in [
            (FinalKind::Blackhole, &mut delta.new_blackholes),
            (FinalKind::Loop, &mut delta.new_loops),
        ] {
            let b = lookup(&base, src, kind);
            let s = lookup(&scen, src, kind);
            if !manager.diff(s, b).is_false() {
                out.push(src);
            }
        }
        let b = lookup(&base, src, FinalKind::Arrive);
        let s = lookup(&scen, src, FinalKind::Arrive);
        if !manager.diff(b, s).is_false() {
            delta.lost_arrivals.push(src);
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::Fib;
    use crate::forward::{forward, ForwardOptions};
    use crate::predicates::NodePredicates;
    use s2_net::config::{DeviceConfig, InterfaceConfig, Vendor};
    use s2_net::policy::Protocol;
    use s2_net::topology::{InterfaceId, Topology};
    use s2_net::Ipv4Addr;
    use s2_routing::{NetworkModel, RibRoute};

    /// Diamond: s—(l,r)—d. Both paths lead to d, where 10.9/16 is local.
    fn diamond() -> NetworkModel {
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let l = topo.add_node("l");
        let r = topo.add_node("r");
        let d = topo.add_node("d");
        topo.connect(s, l);
        topo.connect(s, r);
        topo.connect(l, d);
        topo.connect(r, d);
        let ip = Ipv4Addr::new;
        let mk = |name: &str, ifaces: Vec<(&str, Ipv4Addr)>| {
            let mut cfg = DeviceConfig::new(name, Vendor::A);
            for (n, a) in ifaces {
                cfg.interfaces.push(InterfaceConfig::new(n, a, 31));
            }
            cfg
        };
        NetworkModel::build(
            topo,
            vec![
                mk("s", vec![("e0", ip(172, 16, 0, 0)), ("e1", ip(172, 16, 1, 0))]),
                mk("l", vec![("e0", ip(172, 16, 0, 1)), ("e1", ip(172, 16, 2, 0))]),
                mk("r", vec![("e0", ip(172, 16, 1, 1)), ("e1", ip(172, 16, 3, 0))]),
                mk("d", vec![("e0", ip(172, 16, 2, 1)), ("e1", ip(172, 16, 3, 1))]),
            ],
        )
        .unwrap()
    }

    fn rib(prefix: &str, egress: Vec<u16>, is_local: bool) -> RibRoute {
        RibRoute {
            prefix: prefix.parse().unwrap(),
            protocol: Protocol::Bgp,
            egress: egress.into_iter().map(InterfaceId).collect(),
            is_local,
            as_path_len: 0,
        }
    }

    fn run(
        model: &NetworkModel,
        ribs: Vec<Vec<RibRoute>>,
        transits: Vec<NodeId>,
        meta_bits: u16,
    ) -> (QueryReport, PacketSpace) {
        let space = PacketSpace::new(meta_bits);
        let mut mgr = space.manager();
        let preds: Vec<NodePredicates> = ribs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                NodePredicates::compile(model, NodeId(i as u32), &Fib::from_rib(r), &space, &mut mgr)
            })
            .collect();
        let query = Query {
            dst_in: Some("10.9.0.0/16".parse().unwrap()),
            src_in: None,
            sources: vec![NodeId(0)],
            dests: vec![NodeId(3)],
            transits: transits.clone(),
        };
        let h = query.header_set(&space, &mut mgr);
        let mut opts = ForwardOptions::default();
        let mut waypoint_bits = BTreeMap::new();
        for (i, t) in transits.iter().enumerate() {
            waypoint_bits.insert(*t, i as u16);
        }
        opts.waypoint_bits = waypoint_bits.clone();
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(NodeId(0), h)], &opts);
        let report = evaluate(&res, &space, &mut mgr, &query, &waypoint_bits);
        (report, space)
    }

    fn healthy_ribs() -> Vec<Vec<RibRoute>> {
        vec![
            vec![rib("10.9.0.0/16", vec![0, 1], false)], // s: ECMP via l and r
            vec![rib("10.9.0.0/16", vec![1], false)],    // l -> d
            vec![rib("10.9.0.0/16", vec![1], false)],    // r -> d
            vec![rib("10.9.0.0/16", vec![], true)],      // d local
        ]
    }

    #[test]
    fn reachability_holds_on_healthy_network() {
        let model = diamond();
        let (report, _) = run(&model, healthy_ribs(), vec![], 0);
        assert!(report.reachable.contains_key(&(NodeId(0), NodeId(3))));
        assert!(report.looped.is_empty());
        assert!(report.blackholed.is_empty());
        assert!(report.multipath_violations.is_empty());
        assert!(!report.has_forwarding_anomaly());
    }

    #[test]
    fn waypoint_violation_detected_on_bypass_path() {
        let model = diamond();
        // Transit required through l (node 1), but ECMP also goes via r.
        let (report, _) = run(&model, healthy_ribs(), vec![NodeId(1)], 1);
        // The copy through r arrives without the l-bit: violation.
        assert!(report
            .waypoint_violations
            .contains_key(&(NodeId(0), NodeId(3), NodeId(1))));
    }

    #[test]
    fn waypoint_satisfied_when_single_path() {
        let model = diamond();
        let mut ribs = healthy_ribs();
        ribs[0] = vec![rib("10.9.0.0/16", vec![0], false)]; // only via l
        let (report, _) = run(&model, ribs, vec![NodeId(1)], 1);
        assert!(report.waypoint_violations.is_empty());
        assert!(report.reachable.contains_key(&(NodeId(0), NodeId(3))));
    }

    #[test]
    fn multipath_inconsistency_detected() {
        let model = diamond();
        let mut ribs = healthy_ribs();
        // Break the right path: r drops the prefix.
        ribs[2] = vec![rib("10.9.0.0/16", vec![], false)];
        let (report, _) = run(&model, ribs, vec![], 0);
        // Same headers arrive via l but blackhole via r: inconsistency.
        assert!(report.multipath_violations.contains_key(&NodeId(0)));
        assert!(report.blackholed.contains_key(&NodeId(0)));
        assert!(report.has_forwarding_anomaly());
    }

    #[test]
    fn consistent_single_outcome_is_not_flagged() {
        let model = diamond();
        let mut ribs = healthy_ribs();
        // Both paths blackhole: consistent (all traffic fails equally).
        ribs[1] = vec![rib("10.9.0.0/16", vec![], false)];
        ribs[2] = vec![rib("10.9.0.0/16", vec![], false)];
        let (report, _) = run(&model, ribs, vec![], 0);
        assert!(report.multipath_violations.is_empty());
        assert!(report.reachable.is_empty());
    }

    #[test]
    fn verdict_delta_flags_regressions_only() {
        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let p1 = space.dst_in(&mut mgr, "10.0.0.0/24".parse().unwrap());
        let p2 = space.dst_in(&mut mgr, "10.0.1.0/24".parse().unwrap());
        let both = mgr.or(p1, p2);
        let ser = |m: &BddManager, b: Bdd| s2_bdd::serialize::to_bytes(m, b);
        let s = NodeId(0);

        // Baseline: everything arrives, one pre-existing blackhole set.
        let baseline = vec![
            (s, FinalKind::Arrive, ser(&mgr, both)),
            (s, FinalKind::Blackhole, ser(&mgr, p2)),
        ];
        // Scenario: p1 stops arriving and newly blackholes; p2's
        // blackhole is pre-existing (not a regression).
        let scenario = vec![
            (s, FinalKind::Arrive, ser(&mgr, p2)),
            (s, FinalKind::Blackhole, ser(&mgr, both)),
        ];
        let d = verdict_delta(&mut mgr, &baseline, &scenario).unwrap();
        assert_eq!(d.new_blackholes, vec![s]);
        assert_eq!(d.lost_arrivals, vec![s]);
        assert!(d.new_loops.is_empty());
        assert_eq!(d.regressions(), 2);

        // Identical runs diff clean.
        let d = verdict_delta(&mut mgr, &baseline, &baseline).unwrap();
        assert!(d.is_clean());

        // A scenario that *fixes* a baseline blackhole is also clean.
        let improved = vec![(s, FinalKind::Arrive, ser(&mgr, both))];
        let d = verdict_delta(&mut mgr, &baseline, &improved).unwrap();
        assert!(d.is_clean());
    }

    #[test]
    fn query_header_set_composes_constraints() {
        let space = PacketSpace::new(1);
        let mut mgr = space.manager();
        let q = Query {
            dst_in: Some("10.0.0.0/8".parse().unwrap()),
            src_in: Some("192.168.0.0/16".parse().unwrap()),
            sources: vec![],
            dests: vec![],
            transits: vec![],
        };
        let h = q.header_set(&space, &mut mgr);
        assert!(!h.is_false());
        // Meta bit is clear in the header set.
        assert!(space.with_meta(&mut mgr, h, 0).is_false());
        let outside = space.dst_in(&mut mgr, "11.0.0.0/8".parse().unwrap());
        assert!(!mgr.intersects(h, outside));
    }
}
