//! # s2-topogen
//!
//! Topology and configuration generators for the S2 experiments:
//!
//! * [`fattree`] — synthesized k-ary FatTrees running eBGP with unique
//!   per-switch ASNs and ECMP, the ACORN-style workload of §5.2,
//! * [`dcn`] — a synthetic stand-in for the paper's proprietary
//!   hyper-scale DCN (§2.3): multi-layer Clos clusters of mixed depth,
//!   per-layer private ASNs with AS_PATH overwrite at the aggregation
//!   boundary, summary-only route aggregation with community tagging,
//!   per-switch ECMP variation, mixed vendor dialects and
//!   `remove-private-as` at the border,
//! * [`inject`] — misconfiguration injectors used by tests and examples to
//!   prove the verifier actually catches bugs.
//!
//! All generators return `(Topology, Vec<DeviceConfig>)`; [`emit_configs`]
//! renders the vendor-specific text files so the full parse pipeline can be
//! exercised end to end.

#![deny(missing_docs)]

pub mod dcn;
pub mod fattree;
pub mod inject;

use s2_net::config::DeviceConfig;
use s2_net::topology::Topology;
use s2_net::{vendor, Ipv4Addr};

/// Allocates /31 point-to-point link subnets from `172.16.0.0/12`.
#[derive(Debug, Clone)]
pub struct LinkAddrAllocator {
    next: u32,
}

impl Default for LinkAddrAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkAddrAllocator {
    /// Starts at `172.16.0.0`.
    pub fn new() -> Self {
        LinkAddrAllocator {
            next: Ipv4Addr::new(172, 16, 0, 0).0,
        }
    }

    /// Returns the two addresses of the next /31.
    ///
    /// # Panics
    /// Panics if the `172.16.0.0/12` pool is exhausted (≈ 512K links).
    pub fn next_pair(&mut self) -> (Ipv4Addr, Ipv4Addr) {
        let a = self.next;
        assert!(
            a < Ipv4Addr::new(172, 32, 0, 0).0,
            "link address pool exhausted"
        );
        self.next += 2;
        (Ipv4Addr(a), Ipv4Addr(a + 1))
    }
}

/// Renders every configuration in its own vendor dialect, returning
/// `(hostname, text)` pairs.
pub fn emit_configs(configs: &[DeviceConfig]) -> Vec<(String, String)> {
    configs
        .iter()
        .map(|c| (c.hostname.clone(), vendor::emit(c)))
        .collect()
}

/// Parses a set of emitted configuration texts back into device configs
/// (the full Batfish-style ingestion path used by the examples).
pub fn parse_configs(texts: &[(String, String)]) -> Result<Vec<DeviceConfig>, s2_net::NetError> {
    texts.iter().map(|(_, t)| vendor::parse(t)).collect()
}

/// Convenience: total number of BGP sessions the topology should have if
/// every adjacent pair peers (each link = 2 directed session endpoints).
pub fn expected_session_endpoints(topology: &Topology) -> usize {
    topology.link_count() * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_hands_out_disjoint_pairs() {
        let mut alloc = LinkAddrAllocator::new();
        let (a1, b1) = alloc.next_pair();
        let (a2, _) = alloc.next_pair();
        assert_eq!(b1.0, a1.0 + 1);
        assert_eq!(a2.0, a1.0 + 2);
        // Both halves of a pair share the /31.
        assert_eq!(a1.0 & !1, b1.0 & !1);
    }
}
