//! Misconfiguration injectors.
//!
//! The point of a verifier is to *find bugs*; these helpers plant the bug
//! classes §2 motivates into an otherwise healthy configuration set so
//! tests, examples and benchmarks can confirm S2 reports them.

use s2_net::acl::{Acl, AclAction, AclEntry, PortRange};
use s2_net::config::DeviceConfig;
use s2_net::Prefix;

/// Breaks a BGP session by corrupting the configured `remote-as` of
/// `host`'s `neighbor_index`-th neighbor (an ASN-mismatch misconfig; the
/// session will not establish and a [`SessionDiagnostic`] is produced).
///
/// [`SessionDiagnostic`]: s2_routing::SessionDiagnostic
pub fn break_session(configs: &mut [DeviceConfig], host: &str, neighbor_index: usize) {
    let cfg = configs
        .iter_mut()
        .find(|c| c.hostname == host)
        .unwrap_or_else(|| panic!("no such host {host}"));
    let bgp = cfg.bgp.as_mut().expect("host runs BGP");
    bgp.neighbors[neighbor_index].remote_as = 65534; // wrong on purpose
}

/// Removes a `network` statement so the prefix is silently not originated
/// (the classic "forgot to announce" bug — traffic blackholes).
pub fn drop_network_statement(configs: &mut [DeviceConfig], host: &str, prefix: Prefix) {
    let cfg = configs
        .iter_mut()
        .find(|c| c.hostname == host)
        .unwrap_or_else(|| panic!("no such host {host}"));
    let bgp = cfg.bgp.as_mut().expect("host runs BGP");
    let before = bgp.networks.len();
    bgp.networks.retain(|n| n.prefix != prefix);
    assert!(bgp.networks.len() < before, "{host} did not originate {prefix}");
}

/// Installs an inbound ACL on every interface of `host` that drops traffic
/// to `dst` (an over-broad filter — the ACL-blackhole bug class).
pub fn acl_block_dst(configs: &mut [DeviceConfig], host: &str, dst: Prefix) {
    let cfg = configs
        .iter_mut()
        .find(|c| c.hostname == host)
        .unwrap_or_else(|| panic!("no such host {host}"));
    let acl = Acl {
        entries: vec![
            AclEntry {
                action: AclAction::Deny,
                src: Prefix::DEFAULT,
                dst,
                proto: None,
                src_ports: PortRange::ANY,
                dst_ports: PortRange::ANY,
            },
            AclEntry::any(AclAction::Permit),
        ],
    };
    cfg.acls.insert("INJECTED-BLOCK".into(), acl);
    for iface in &mut cfg.interfaces {
        iface.acl_in = Some("INJECTED-BLOCK".into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{generate, FatTreeParams};

    #[test]
    fn break_session_corrupts_remote_as() {
        let mut ft = generate(FatTreeParams::new(4));
        let before = ft.configs[ft.edges[0].index()].bgp.as_ref().unwrap().neighbors[0].remote_as;
        break_session(&mut ft.configs, "pod0-edge0", 0);
        let after = ft.configs[ft.edges[0].index()].bgp.as_ref().unwrap().neighbors[0].remote_as;
        assert_ne!(before, after);
    }

    #[test]
    fn drop_network_removes_origination() {
        let mut ft = generate(FatTreeParams::new(4));
        let p = crate::fattree::FatTree::server_prefix(0, 0);
        drop_network_statement(&mut ft.configs, "pod0-edge0", p);
        assert!(ft.configs[ft.edges[0].index()]
            .bgp
            .as_ref()
            .unwrap()
            .networks
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "did not originate")]
    fn drop_network_panics_on_wrong_host() {
        let mut ft = generate(FatTreeParams::new(4));
        let p = crate::fattree::FatTree::server_prefix(0, 0);
        drop_network_statement(&mut ft.configs, "pod1-edge0", p);
    }

    #[test]
    fn acl_block_installs_on_all_interfaces() {
        let mut ft = generate(FatTreeParams::new(4));
        acl_block_dst(&mut ft.configs, "core0", "10.0.0.0/24".parse().unwrap());
        let cfg = &ft.configs[ft.cores[0].index()];
        assert!(cfg.acls.contains_key("INJECTED-BLOCK"));
        assert!(cfg.interfaces.iter().all(|i| i.acl_in.is_some()));
        assert!(cfg.validate().is_ok());
    }
}
