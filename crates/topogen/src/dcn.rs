//! A synthetic stand-in for the paper's proprietary hyper-scale DCN
//! (§2.3 / §5.3).
//!
//! The paper's real network cannot be released, but §2.3 describes exactly
//! which behaviours give it its distinct verification profile. This
//! generator reproduces every one of them:
//!
//! * **Multi-layer Clos clusters of mixed depth** — larger clusters have 5
//!   layers, smaller ones 3, joined by a spine layer and border routers.
//! * **Per-layer ASNs** — switches at the same layer of the same cluster
//!   share an ASN; even layers use private ASNs, odd layers public ones
//!   (so `remove-private-as` has observable, vendor-dependent effects).
//! * **AS_PATH overwrite** — the layer-1 switches overwrite the AS path on
//!   routes exported down to ToRs, preventing the route drops that
//!   repeated per-layer ASNs would otherwise cause.
//! * **Route aggregation with community tagging** — the top layer of each
//!   5-layer cluster originates summary-only aggregates of the cluster's
//!   server and loopback space, tagged with communities the borders match.
//! * **ECMP variation** — alternate switches get different `max_ecmp`.
//! * **Mixed vendors** — switches alternate between the two dialects, so
//!   both `remove-private-as` semantics are active in one network.

use crate::LinkAddrAllocator;
use s2_net::config::{
    Aggregate, BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, StaticRoute,
    Vendor,
};
use s2_net::policy::{
    community, AsPathAction, MatchCondition, PolicyAction, PrefixList, PrefixListEntry,
    RouteMapClause, RouteMapDisposition,
};
use s2_net::topology::{NodeId, Topology};
use s2_net::{Ipv4Addr, Prefix};

/// Shape of one cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of layers (3 or 5 in the paper's DCN).
    pub layers: usize,
    /// Number of ToR switches (layer 0).
    pub tors: usize,
    /// Number of switches in each layer above the ToRs.
    pub width: usize,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DcnParams {
    /// Cluster shapes.
    pub clusters: Vec<ClusterSpec>,
    /// Number of spine switches interconnecting clusters.
    pub spines: usize,
    /// Number of border routers above the spines.
    pub borders: usize,
}

impl DcnParams {
    /// A small mixed network: one 3-layer and one 5-layer cluster.
    pub fn small() -> Self {
        DcnParams {
            clusters: vec![
                ClusterSpec { layers: 3, tors: 4, width: 2 },
                ClusterSpec { layers: 5, tors: 4, width: 2 },
            ],
            spines: 2,
            borders: 2,
        }
    }

    /// Scales the small shape up by duplicating clusters and widening.
    pub fn scaled(clusters: usize, tors: usize, width: usize) -> Self {
        DcnParams {
            clusters: (0..clusters)
                .map(|c| ClusterSpec {
                    layers: if c % 2 == 0 { 3 } else { 5 },
                    tors,
                    width,
                })
                .collect(),
            spines: width.max(2),
            borders: 2,
        }
    }

    /// Total switch count.
    pub fn switch_count(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.tors + (c.layers - 1) * c.width)
            .sum::<usize>()
            + self.spines
            + self.borders
    }
}

/// The community tagged onto every cluster aggregate.
pub const AGG_COMMUNITY: u32 = community(60000, 99);

/// The per-cluster aggregate community.
pub fn cluster_community(cluster: usize) -> u32 {
    community(60000, cluster as u16)
}

/// The generated DCN.
#[derive(Debug, Clone)]
pub struct Dcn {
    /// The physical topology.
    pub topology: Topology,
    /// Per-node configurations.
    pub configs: Vec<DeviceConfig>,
    /// Parameters used.
    pub params: DcnParams,
    /// ToR node ids per cluster.
    pub tors: Vec<Vec<NodeId>>,
    /// Border router node ids.
    pub borders: Vec<NodeId>,
    /// Spine node ids.
    pub spines: Vec<NodeId>,
}

impl Dcn {
    /// Server prefix of ToR `t` in cluster `c`.
    pub fn server_prefix(cluster: usize, tor: usize) -> Prefix {
        Prefix::new(Ipv4Addr::new(10, cluster as u8, tor as u8, 0), 24)
    }

    /// Management loopback prefix of ToR `t` in cluster `c`.
    pub fn loopback_prefix(cluster: usize, tor: usize) -> Prefix {
        Prefix::new(Ipv4Addr::new(11, cluster as u8, tor as u8, 1), 32)
    }

    /// The cluster-wide server aggregate.
    pub fn server_aggregate(cluster: usize) -> Prefix {
        Prefix::new(Ipv4Addr::new(10, cluster as u8, 0, 0), 16)
    }

    /// The cluster-wide loopback aggregate.
    pub fn loopback_aggregate(cluster: usize) -> Prefix {
        Prefix::new(Ipv4Addr::new(11, cluster as u8, 0, 0), 16)
    }
}

/// ASN of a cluster layer: even layers private, odd layers public, unique
/// per (cluster, layer).
fn layer_asn(cluster: usize, layer: usize) -> u32 {
    if layer.is_multiple_of(2) {
        64512 + (cluster * 8 + layer) as u32
    } else {
        60000 + (cluster * 8 + layer) as u32
    }
}

/// Spines share one public ASN (they are one layer, per the paper).
const SPINE_ASN: u32 = 65000;

fn border_asn(i: usize) -> u32 {
    400 + i as u32
}

/// Generates the DCN.
pub fn generate(params: DcnParams) -> Dcn {
    let mut topo = Topology::new();
    let mut alloc = LinkAddrAllocator::new();

    // ---- Nodes ----
    let mut cluster_layers: Vec<Vec<Vec<NodeId>>> = Vec::new(); // [cluster][layer][i]
    for (c, spec) in params.clusters.iter().enumerate() {
        let mut layers = Vec::new();
        let tors: Vec<NodeId> = (0..spec.tors)
            .map(|i| topo.add_node(format!("cl{c}-l0-s{i}")))
            .collect();
        layers.push(tors);
        for l in 1..spec.layers {
            layers.push(
                (0..spec.width)
                    .map(|i| topo.add_node(format!("cl{c}-l{l}-s{i}")))
                    .collect(),
            );
        }
        cluster_layers.push(layers);
    }
    let spines: Vec<NodeId> = (0..params.spines)
        .map(|i| topo.add_node(format!("spine{i}")))
        .collect();
    let borders: Vec<NodeId> = (0..params.borders)
        .map(|i| topo.add_node(format!("border{i}")))
        .collect();

    // ---- Base configurations ----
    let mut configs: Vec<DeviceConfig> = topo
        .nodes()
        .map(|n| {
            let name = topo.name(n).to_string();
            let vendor = if n.0 % 2 == 0 { Vendor::A } else { Vendor::B };
            let mut cfg = DeviceConfig::new(name, vendor);
            let id = n.0;
            let mut bgp = BgpProcess::new(
                0, // filled in below
                Ipv4Addr::new(2, (id >> 16) as u8, (id >> 8) as u8, id as u8),
            );
            // ECMP variation: even switches 64, odd 32 (§2.3).
            bgp.max_ecmp = if id % 2 == 0 { 64 } else { 32 };
            cfg.bgp = Some(bgp);
            cfg
        })
        .collect();
    for (c, layers) in cluster_layers.iter().enumerate() {
        for (l, nodes) in layers.iter().enumerate() {
            for n in nodes {
                configs[n.index()].bgp.as_mut().unwrap().asn = layer_asn(c, l);
            }
        }
    }
    for s in &spines {
        configs[s.index()].bgp.as_mut().unwrap().asn = SPINE_ASN;
    }
    for (i, b) in borders.iter().enumerate() {
        configs[b.index()].bgp.as_mut().unwrap().asn = border_asn(i);
    }

    // ---- Policies ----
    // Layer-1 switches overwrite the AS path on routes sent down to ToRs,
    // scoped to the DC address space by a prefix list.
    let dc_space = PrefixList {
        entries: vec![
            PrefixListEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                ge: Some(9),
                le: Some(32),
                permit: true,
            },
            PrefixListEntry {
                prefix: "11.0.0.0/8".parse().unwrap(),
                ge: Some(9),
                le: Some(32),
                permit: true,
            },
        ],
    };
    let overwrite_map = {
        let mut rm = s2_net::policy::RouteMap::default();
        rm.push_clause(RouteMapClause {
            seq: 10,
            disposition: RouteMapDisposition::Permit,
            matches: vec![MatchCondition::PrefixList("DC-SPACE".into())],
            actions: vec![PolicyAction::AsPath(AsPathAction::Overwrite(Vec::new()))],
        });
        rm.push_clause(RouteMapClause {
            seq: 20,
            disposition: RouteMapDisposition::Permit,
            matches: vec![],
            actions: vec![],
        });
        rm
    };
    // Borders prefer tagged aggregates.
    let border_import = {
        let mut rm = s2_net::policy::RouteMap::default();
        rm.push_clause(RouteMapClause {
            seq: 10,
            disposition: RouteMapDisposition::Permit,
            matches: vec![MatchCondition::Community(AGG_COMMUNITY)],
            actions: vec![PolicyAction::SetLocalPref(200)],
        });
        rm.push_clause(RouteMapClause {
            seq: 20,
            disposition: RouteMapDisposition::Permit,
            matches: vec![],
            actions: vec![],
        });
        rm
    };

    // ---- Wiring ----
    let mut iface_counter = vec![0usize; topo.node_count()];
    let mut connect = |topo: &mut Topology,
                       configs: &mut Vec<DeviceConfig>,
                       alloc: &mut LinkAddrAllocator,
                       x: NodeId,
                       y: NodeId,
                       export_x: Option<&str>,
                       remove_private_x: bool| {
        topo.connect(x, y);
        let (ax, ay) = alloc.next_pair();
        let asn_x = configs[x.index()].bgp.as_ref().unwrap().asn;
        let asn_y = configs[y.index()].bgp.as_ref().unwrap().asn;
        for (node, addr, peer_addr, peer_asn, export, rp) in [
            (x, ax, ay, asn_y, export_x, remove_private_x),
            (y, ay, ax, asn_x, None, false),
        ] {
            let idx = iface_counter[node.index()];
            iface_counter[node.index()] += 1;
            configs[node.index()]
                .interfaces
                .push(InterfaceConfig::new(format!("eth{idx}"), addr, 31));
            configs[node.index()]
                .bgp
                .as_mut()
                .expect("all switches run BGP")
                .neighbors
                .push(BgpNeighbor {
                    peer: peer_addr,
                    remote_as: peer_asn,
                    import_policy: None,
                    export_policy: export.map(str::to_string),
                    remove_private_as: rp,
                });
        }
    };

    for (c, layers) in cluster_layers.iter().enumerate() {
        // Full bipartite between adjacent layers. Layer-1 exports to ToRs
        // through the overwrite map.
        for l in 0..layers.len() - 1 {
            for &hi in &layers[l + 1] {
                for &lo in &layers[l] {
                    let export = if l == 0 { Some("TO-TOR") } else { None };
                    connect(&mut topo, &mut configs, &mut alloc, hi, lo, export, false);
                }
            }
        }
        // Cluster top layer to all spines.
        let top = layers.last().expect("clusters have at least one layer");
        for &t in top {
            for &s in &spines {
                connect(&mut topo, &mut configs, &mut alloc, t, s, None, false);
            }
        }
        let _ = c;
    }
    // Spines to borders, with remove-private-as on the spine side.
    for &s in &spines {
        for &b in &borders {
            connect(&mut topo, &mut configs, &mut alloc, s, b, None, true);
        }
    }
    // Borders peer with each other (exchange filtered routes, §2.3).
    for i in 0..borders.len() {
        for j in (i + 1)..borders.len() {
            connect(&mut topo, &mut configs, &mut alloc, borders[i], borders[j], None, false);
        }
    }

    // ---- Originations, aggregation, policy attachment ----
    for (c, layers) in cluster_layers.iter().enumerate() {
        for (t, &tor) in layers[0].iter().enumerate() {
            let bgp = configs[tor.index()].bgp.as_mut().unwrap();
            bgp.networks.push(Network {
                prefix: Dcn::server_prefix(c, t),
            });
            bgp.networks.push(Network {
                prefix: Dcn::loopback_prefix(c, t),
            });
        }
        // Layer-1 switches need the overwrite map + prefix list installed.
        for &n in &layers[1] {
            let cfg = &mut configs[n.index()];
            cfg.prefix_lists.insert("DC-SPACE".into(), dc_space.clone());
            cfg.route_maps.insert("TO-TOR".into(), overwrite_map.clone());
        }
        // Aggregation at the top of 5-layer clusters (§2.3: layer ≥ 3).
        if layers.len() >= 4 {
            for &n in layers.last().unwrap() {
                let bgp = configs[n.index()].bgp.as_mut().unwrap();
                bgp.aggregates.push(Aggregate {
                    prefix: Dcn::server_aggregate(c),
                    summary_only: true,
                    communities: vec![AGG_COMMUNITY, cluster_community(c)],
                });
                bgp.aggregates.push(Aggregate {
                    prefix: Dcn::loopback_aggregate(c),
                    summary_only: true,
                    communities: vec![AGG_COMMUNITY, cluster_community(c)],
                });
            }
        }
    }
    for &b in &borders {
        let cfg = &mut configs[b.index()];
        cfg.route_maps.insert("FROM-FABRIC".into(), border_import.clone());
        let bgp = cfg.bgp.as_mut().unwrap();
        for n in bgp.neighbors.iter_mut() {
            n.import_policy = Some("FROM-FABRIC".into());
        }
        // Borders discard unknown DC space (exercises static routes).
        cfg.static_routes.push(StaticRoute {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: None,
        });
    }

    let tors = cluster_layers.iter().map(|l| l[0].clone()).collect();
    Dcn {
        topology: topo,
        configs,
        params,
        tors,
        borders,
        spines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_routing::NetworkModel;

    #[test]
    fn counts_match_spec() {
        let params = DcnParams::small();
        let expected = params.switch_count();
        let dcn = generate(params);
        assert_eq!(dcn.topology.node_count(), expected);
        // 3-layer: 4 ToR + 2*2; 5-layer: 4 + 4*2; + 2 spines + 2 borders.
        assert_eq!(expected, 8 + 12 + 4);
    }

    #[test]
    fn sessions_all_establish() {
        let dcn = generate(DcnParams::small());
        let model = NetworkModel::build(dcn.topology.clone(), dcn.configs.clone()).unwrap();
        assert!(model.session_diagnostics.is_empty(), "{:?}", model.session_diagnostics);
        assert_eq!(model.session_count(), dcn.topology.link_count() * 2);
    }

    #[test]
    fn layer_asns_shared_and_parity_split() {
        let dcn = generate(DcnParams::small());
        let asn_of = |name: &str| {
            let n = dcn.topology.node_by_name(name).unwrap();
            dcn.configs[n.index()].bgp.as_ref().unwrap().asn
        };
        assert_eq!(asn_of("cl0-l0-s0"), asn_of("cl0-l0-s3"));
        assert_ne!(asn_of("cl0-l0-s0"), asn_of("cl1-l0-s0"));
        assert!(s2_net::policy::is_private_asn(asn_of("cl0-l0-s0"))); // even layer
        assert!(!s2_net::policy::is_private_asn(asn_of("cl0-l1-s0"))); // odd layer
    }

    #[test]
    fn five_layer_cluster_aggregates_three_layer_does_not() {
        let dcn = generate(DcnParams::small());
        let has_agg = |name: &str| {
            let n = dcn.topology.node_by_name(name).unwrap();
            !dcn.configs[n.index()].bgp.as_ref().unwrap().aggregates.is_empty()
        };
        assert!(!has_agg("cl0-l2-s0"), "3-layer cluster must not aggregate");
        assert!(has_agg("cl1-l4-s0"), "5-layer top must aggregate");
        let n = dcn.topology.node_by_name("cl1-l4-s0").unwrap();
        let agg = &dcn.configs[n.index()].bgp.as_ref().unwrap().aggregates[0];
        assert!(agg.summary_only);
        assert!(agg.communities.contains(&AGG_COMMUNITY));
    }

    #[test]
    fn vendors_and_ecmp_are_mixed() {
        let dcn = generate(DcnParams::small());
        let vendors: std::collections::HashSet<_> =
            dcn.configs.iter().map(|c| c.vendor).collect();
        assert_eq!(vendors.len(), 2);
        let ecmps: std::collections::HashSet<_> = dcn
            .configs
            .iter()
            .map(|c| c.bgp.as_ref().unwrap().max_ecmp)
            .collect();
        assert_eq!(ecmps, [32u8, 64].into_iter().collect());
    }

    #[test]
    fn tor_overwrite_policy_is_installed() {
        let dcn = generate(DcnParams::small());
        let n = dcn.topology.node_by_name("cl0-l1-s0").unwrap();
        let cfg = &dcn.configs[n.index()];
        assert!(cfg.route_maps.contains_key("TO-TOR"));
        assert!(cfg.prefix_lists.contains_key("DC-SPACE"));
        // The map is referenced by the down-facing neighbors.
        let bgp = cfg.bgp.as_ref().unwrap();
        assert!(bgp
            .neighbors
            .iter()
            .any(|nb| nb.export_policy.as_deref() == Some("TO-TOR")));
    }

    #[test]
    fn configs_roundtrip_through_both_dialects() {
        let dcn = generate(DcnParams::small());
        let texts = crate::emit_configs(&dcn.configs);
        let parsed = crate::parse_configs(&texts).unwrap();
        assert_eq!(parsed, dcn.configs);
    }

    #[test]
    fn scaled_params_grow() {
        let p = DcnParams::scaled(4, 6, 3);
        assert_eq!(p.clusters.len(), 4);
        assert!(p.switch_count() > DcnParams::small().switch_count());
    }
}
