//! Synthesized k-ary FatTree configurations (ACORN-style, §5.2).
//!
//! A FatTree with parameter `k` (even) has `k` pods, each with `k/2`
//! aggregation and `k/2` edge switches, plus `(k/2)²` cores. Every switch
//! gets a unique ASN and forms eBGP sessions with all physical neighbors;
//! every edge switch originates one server /24; ECMP allows up to 64 equal
//! cost paths — matching the paper's synthesized workload. Note the paper
//! names topologies by k: "FatTree40" is k=40 (2000 switches).

use crate::LinkAddrAllocator;
use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
use s2_net::topology::{NodeId, Topology};
use s2_net::{Ipv4Addr, Prefix};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// The arity `k` (must be even, ≥ 2).
    pub k: usize,
    /// ECMP width configured on every switch (paper: 64).
    pub max_ecmp: u8,
}

impl FatTreeParams {
    /// Standard parameters for a given k.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
        FatTreeParams { k, max_ecmp: 64 }
    }

    /// Total switch count: k pods × k switches + (k/2)² cores.
    pub fn switch_count(&self) -> usize {
        self.k * self.k + (self.k / 2) * (self.k / 2)
    }

    /// Number of server prefixes originated (one per edge switch).
    pub fn prefix_count(&self) -> usize {
        self.k * self.k / 2
    }
}

/// The generated network.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// The physical topology.
    pub topology: Topology,
    /// One configuration per switch, aligned with topology node ids.
    pub configs: Vec<DeviceConfig>,
    /// The parameters used.
    pub params: FatTreeParams,
    /// Node ids of all edge switches, in (pod, index) order.
    pub edges: Vec<NodeId>,
    /// Node ids of all aggregation switches.
    pub aggs: Vec<NodeId>,
    /// Node ids of all core switches.
    pub cores: Vec<NodeId>,
}

impl FatTree {
    /// The server prefix originated by edge switch `(pod, e)`.
    pub fn server_prefix(pod: usize, e: usize) -> Prefix {
        Prefix::new(Ipv4Addr::new(10, pod as u8, e as u8, 0), 24)
    }

    /// The edge switch node for `(pod, e)`.
    pub fn edge(&self, pod: usize, e: usize) -> NodeId {
        self.edges[pod * (self.params.k / 2) + e]
    }

    /// The aggregation switch node for `(pod, a)`.
    pub fn agg(&self, pod: usize, a: usize) -> NodeId {
        self.aggs[pod * (self.params.k / 2) + a]
    }

    /// All originated server prefixes.
    pub fn server_prefixes(&self) -> Vec<Prefix> {
        let half = self.params.k / 2;
        (0..self.params.k)
            .flat_map(|p| (0..half).map(move |e| Self::server_prefix(p, e)))
            .collect()
    }
}

/// Generates a FatTree.
pub fn generate(params: FatTreeParams) -> FatTree {
    let k = params.k;
    let half = k / 2;
    let mut topo = Topology::new();
    let mut alloc = LinkAddrAllocator::new();

    // Nodes: cores first, then per-pod aggs and edges.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| topo.add_node(format!("core{i}")))
        .collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut edges = Vec::with_capacity(k * half);
    for p in 0..k {
        for a in 0..half {
            aggs.push(topo.add_node(format!("pod{p}-agg{a}")));
        }
        for e in 0..half {
            edges.push(topo.add_node(format!("pod{p}-edge{e}")));
        }
    }

    // Configurations: unique ASN per switch = 65536 + node id.
    let mut configs: Vec<DeviceConfig> = topo
        .nodes()
        .map(|n| {
            let name = topo.name(n).to_string();
            let mut cfg = DeviceConfig::new(name, Vendor::A);
            let id = n.0;
            let mut bgp = BgpProcess::new(
                65536 + id,
                Ipv4Addr::new(1, (id >> 16) as u8, (id >> 8) as u8, id as u8),
            );
            bgp.max_ecmp = params.max_ecmp;
            cfg.bgp = Some(bgp);
            cfg
        })
        .collect();

    // Wire a link plus the matching interface configs and BGP neighbors.
    let mut iface_counter = vec![0usize; topo.node_count()];
    let mut connect = |topo: &mut Topology,
                       configs: &mut Vec<DeviceConfig>,
                       alloc: &mut LinkAddrAllocator,
                       x: NodeId,
                       y: NodeId| {
        topo.connect(x, y);
        let (ax, ay) = alloc.next_pair();
        for (node, addr, peer_addr) in [(x, ax, ay), (y, ay, ax)] {
            let idx = iface_counter[node.index()];
            iface_counter[node.index()] += 1;
            configs[node.index()]
                .interfaces
                .push(InterfaceConfig::new(format!("eth{idx}"), addr, 31));
            let peer_asn = 65536 + if node == x { y.0 } else { x.0 };
            configs[node.index()]
                .bgp
                .as_mut()
                .expect("all switches run BGP")
                .neighbors
                .push(BgpNeighbor {
                    peer: peer_addr,
                    remote_as: peer_asn,
                    import_policy: None,
                    export_policy: None,
                    remove_private_as: false,
                });
        }
    };

    // Edge(p,e) — Agg(p,a) for all a; Agg(p,a) — Core[a*half + j].
    for p in 0..k {
        for e in 0..half {
            let edge = edges[p * half + e];
            for a in 0..half {
                let agg = aggs[p * half + a];
                connect(&mut topo, &mut configs, &mut alloc, edge, agg);
            }
        }
        for a in 0..half {
            let agg = aggs[p * half + a];
            for j in 0..half {
                let core = cores[a * half + j];
                connect(&mut topo, &mut configs, &mut alloc, agg, core);
            }
        }
    }

    // Originations: each edge announces its server prefix.
    for p in 0..k {
        for e in 0..half {
            let node = edges[p * half + e];
            configs[node.index()]
                .bgp
                .as_mut()
                .expect("edges run BGP")
                .networks
                .push(Network {
                    prefix: FatTree::server_prefix(p, e),
                });
        }
    }

    FatTree {
        topology: topo,
        configs,
        params,
        edges,
        aggs,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_routing::NetworkModel;

    #[test]
    fn counts_match_closed_forms() {
        let ft = generate(FatTreeParams::new(4));
        assert_eq!(ft.topology.node_count(), 20);
        assert_eq!(ft.params.switch_count(), 20);
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.edges.len(), 8);
        // Links: k^3/4 edge-agg + k^3/4 agg-core = 32.
        assert_eq!(ft.topology.link_count(), 32);
        assert_eq!(ft.params.prefix_count(), 8);
        assert_eq!(ft.server_prefixes().len(), 8);
    }

    #[test]
    fn all_sessions_establish() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        assert!(model.session_diagnostics.is_empty(), "{:?}", model.session_diagnostics);
        assert_eq!(model.session_count(), crate::expected_session_endpoints(&ft.topology));
    }

    #[test]
    fn asns_are_unique() {
        let ft = generate(FatTreeParams::new(6));
        let mut asns: Vec<u32> = ft
            .configs
            .iter()
            .map(|c| c.bgp.as_ref().unwrap().asn)
            .collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), ft.topology.node_count());
    }

    #[test]
    fn edge_lookup_matches_prefix() {
        let ft = generate(FatTreeParams::new(4));
        let e = ft.edge(1, 0);
        assert_eq!(ft.topology.name(e), "pod1-edge0");
        let cfg = &ft.configs[e.index()];
        assert_eq!(
            cfg.bgp.as_ref().unwrap().networks[0].prefix,
            FatTree::server_prefix(1, 0)
        );
    }

    #[test]
    fn configs_roundtrip_through_vendor_text() {
        let ft = generate(FatTreeParams::new(4));
        let texts = crate::emit_configs(&ft.configs);
        let parsed = crate::parse_configs(&texts).unwrap();
        assert_eq!(parsed, ft.configs);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_is_rejected() {
        FatTreeParams::new(5);
    }
}
