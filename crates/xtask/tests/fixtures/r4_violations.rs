// Fixture: raw BDD handles at the wire boundary; trips r4.
// `s2_bdd::serialize` is the sanctioned crossing and must NOT trip.

use s2_bdd::serialize::serialize; // sanctioned: no finding
use s2_bdd::Bdd; // line 5: raw type at the boundary

fn frame(manager: &s2_bdd::BddManager, bdd: Bdd) -> Vec<u8> {
    // line 7 above: `s2_bdd::BddManager` and `Bdd` both trip.
    serialize(manager, bdd)
}
