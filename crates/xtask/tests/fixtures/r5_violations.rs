// Fixture: raw clock types outside crates/obs; trips r5.

use std::time::Instant; // line 3
use std::time::SystemTime; // line 4

fn naive_timing() -> u128 {
    let t0 = Instant::now(); // line 7
    t0.elapsed().as_nanos()
}

fn wall() -> SystemTime { // line 11
    SystemTime::now() // line 12
}
