//! Fixture: pure computation, no socket types, no declared sources —
//! the taint pass must produce zero roots and zero findings.

pub fn checksum(data: &[u8]) -> u32 {
    data.iter().map(|&b| u32::from(b)).sum()
}

pub fn clamp_len(n: usize) -> usize {
    n.min(4096)
}
