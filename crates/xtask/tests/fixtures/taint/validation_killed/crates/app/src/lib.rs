//! Fixture: the same socket-read shape as the flow cases, but the
//! peer-derived index is range-checked against the table before use —
//! the comparison kills the taint and no finding may fire.

use std::io::Read;
use std::net::TcpStream;

pub fn serve(sock: &mut TcpStream, table: &[u16]) -> u16 {
    let mut buf = [0u8; 2];
    sock.read_exact(&mut buf).ok();
    let idx = buf[0] as usize;
    if idx >= table.len() {
        return 0;
    }
    table[idx]
}
