//! Fixture: a peer-reachable `.unwrap()` carrying a justified allow
//! pragma. The taint pass must still report the finding, but
//! suppressed — never silently dropped.

use std::io::Read;
use std::net::TcpStream;

pub fn serve(sock: &mut TcpStream) -> u8 {
    let mut buf = [0u8; 4];
    sock.read_exact(&mut buf).ok();
    // s2-lint: allow(r1-panic-freedom): the buffer is a four-byte stack array, so first() is always Some
    buf.first().copied().unwrap()
}
