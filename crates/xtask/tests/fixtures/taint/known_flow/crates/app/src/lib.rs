//! Fixture: the transport entry point. Reads a header off a peer
//! socket and hands the raw bytes to another crate's decoder without
//! validating them. This file itself contains no panic token — the
//! sink lives across the crate boundary in `codec`, which is exactly
//! the flow a per-file scan of this file cannot see.

use codec::decode_header;
use std::io::Read;
use std::net::TcpStream;

pub fn serve(sock: &mut TcpStream) -> u64 {
    let mut head = [0u8; 16];
    sock.read_exact(&mut head).ok();
    decode_header(&head)
}
