//! Fixture: a header decoder that trusts its caller to have validated
//! the buffer. Safe for every caller inside this crate's tests — but
//! `app::serve` feeds it raw peer bytes, so the indexing and the
//! `.unwrap()` below are peer-triggerable panics.

pub fn decode_header(head: &[u8]) -> u64 {
    let tag = head[0];
    let rest: [u8; 8] = head[1..9].try_into().unwrap();
    u64::from(tag) << 56 | u64::from_be_bytes(rest)
}
