//! Fixture: the helper module holding the sink — an unchecked index
//! whose position comes from the peer-controlled first byte.

pub fn payload_at(data: &[u8], idx: usize) -> u8 {
    data[idx]
}
