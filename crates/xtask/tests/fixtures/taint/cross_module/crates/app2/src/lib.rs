//! Fixture: peer bytes flow from the socket read here into a sibling
//! module's helper via a `frame::`-qualified call. The sink is in
//! `frame.rs`; this file only derives the (tainted) index.

mod frame;

use std::io::Read;
use std::net::TcpStream;

pub fn serve(sock: &mut TcpStream) -> u8 {
    let mut buf = [0u8; 16];
    sock.read_exact(&mut buf).ok();
    let idx = buf[0] as usize;
    frame::payload_at(&buf, idx)
}
