// Fixture: panic-free peer-input handling; r1 must report nothing.

fn decode(buf: &[u8]) -> Option<u32> {
    let first = *buf.first()?;
    // `let`-destructuring of a fixed-size pattern is not an index
    // expression, and neither is an array literal after `in`.
    let [a, b] = [first, first];
    let mut total = 0u32;
    for v in [a, b] {
        total = total.checked_add(u32::from(v))?;
    }
    let map: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    map.get(&total).copied()
}
