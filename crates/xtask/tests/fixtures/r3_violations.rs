// Fixture: ambient time and randomness in a pure crate; trips r3.

use std::time::Instant; // line 3
use std::time::SystemTime; // line 4

fn stamp() -> Instant {
    Instant::now() // line 7
}

fn entropy() -> u64 {
    let _ = SystemTime::now(); // line 11
    let rng = thread_rng(); // line 12
    let _ = random::<u64>(); // line 13
    rng
}
