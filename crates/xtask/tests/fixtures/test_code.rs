// Fixture: violations inside #[cfg(test)] code are not reported —
// tests may unwrap and index freely.

fn shipped(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unwraps_are_fine_here() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.get(&0).is_none());
        let v = vec![1u8, 2, 3];
        assert_eq!(v[0], shipped(&v).unwrap());
    }
}
