// Fixture: a violation suppressed by a justified pragma.

fn checked(buf: &[u8]) -> u8 {
    assert!(!buf.is_empty());
    // s2-lint: allow(r1-panic-freedom): length asserted on the previous line; index 0 is in range.
    buf[0]
}
