// Fixture: a pragma with no justification does NOT suppress, and
// additionally earns a pragma-justification finding of its own.

fn sloppy(buf: &[u8]) -> u8 {
    // s2-lint: allow(r1-panic-freedom)
    buf[0]
}
