// Fixture: every line below should trip r1-panic-freedom.
// Not compiled — subdirectories of tests/ are not cargo targets.

fn decode(buf: &[u8]) -> u32 {
    let first = buf[0]; // line 5: slice indexing
    let tail = parse(buf).unwrap(); // line 6: unwrap
    let head = parse(buf).expect("peer sent garbage"); // line 7: expect
    if first == 0 {
        panic!("zero kind"); // line 9: panic!
    }
    if tail > head {
        unreachable!(); // line 12: unreachable!
    }
    tail
}

fn parse(_b: &[u8]) -> Option<u32> {
    None
}
