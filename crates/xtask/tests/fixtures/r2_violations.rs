// Fixture: hash-ordered containers in an encode path; trips r2.

use std::collections::HashMap; // line 3
use std::collections::HashSet; // line 4

fn encode(routes: &HashMap<u32, u32>, out: &mut Vec<u8>) {
    for (k, v) in routes {
        out.extend_from_slice(&k.to_be_bytes());
        out.extend_from_slice(&v.to_be_bytes());
    }
}

fn dedup(xs: &[u32]) -> HashSet<u32> {
    xs.iter().copied().collect()
}
