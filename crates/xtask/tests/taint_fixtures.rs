//! End-to-end tests of the workspace taint pass against the mini
//! workspaces under `tests/fixtures/taint/` (each case directory is a
//! self-contained root with its own `crates/` tree; the files are
//! data, not compile targets).
//!
//! The headline case, `known_flow`, is the acceptance criterion for
//! the v2 analysis: peer bytes read in `app::serve` cross a crate
//! boundary into `codec::decode_header`, whose indexing and
//! `.unwrap()` panic on short input. A per-file scan of the entry
//! point finds nothing — the sink file was never in any configured
//! path list — while the call-graph pass reports the sink with a
//! root→sink flow trace.

use std::path::{Path, PathBuf};
use xtask::config::{self, Config};
use xtask::rules::Finding;

fn case_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint").join(case)
}

/// The workspace-pass config: R1 at deny level, no configured paths —
/// everything reported comes from the call-graph derivation.
fn r1_cfg() -> Config {
    config::parse("[rules.r1-panic-freedom]\nlevel = \"deny\"\n").expect("config parses")
}

fn live(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.is_live()).collect()
}

#[test]
fn cross_crate_flow_is_found_with_a_trace() {
    let report = xtask::run(&case_root("known_flow"), &r1_cfg(), false).unwrap();
    assert!(report.failed, "{:?}", report.findings);
    let live = live(&report.findings);
    assert!(!live.is_empty());
    assert!(live.iter().all(|f| f.rule == "r1-panic-freedom"), "{live:?}");
    // Every sink sits in the codec crate, not the entry-point file.
    assert!(
        live.iter().all(|f| f.file == "crates/codec/src/lib.rs"),
        "{live:?}"
    );
    let unwrap = live
        .iter()
        .find(|f| f.message.contains(".unwrap()"))
        .expect("peer-reachable unwrap is reported");
    // The flow trace walks root → sink across the crate boundary.
    assert!(unwrap.trace.len() >= 2, "{:?}", unwrap.trace);
    assert!(
        unwrap.trace[0].contains("serve") && unwrap.trace[0].contains("read_exact"),
        "{:?}",
        unwrap.trace
    );
    assert!(
        unwrap.trace.last().unwrap().contains("decode_header"),
        "{:?}",
        unwrap.trace
    );
    // Findings carry stable IDs and positions.
    assert!(live.iter().all(|f| f.id.starts_with("S2L-") && f.col > 0));
}

/// The acceptance check for v2: the old per-file token scan of the
/// entry-point file reports nothing (it holds no panic token), so a
/// path-scoped config that lists only the transport file misses the
/// flow entirely. The workspace pass above catches it.
#[test]
fn per_file_scan_of_the_entry_point_misses_the_cross_crate_flow() {
    let entry = case_root("known_flow").join("crates/app/src/lib.rs");
    let text = std::fs::read_to_string(entry).unwrap();
    let scanned = xtask::lexer::scan(&text);
    let mut findings = Vec::new();
    xtask::rules::run_rule(
        "r1-panic-freedom",
        "crates/app/src/lib.rs",
        &scanned,
        &mut findings,
    );
    assert!(
        findings.is_empty(),
        "per-file scan should see nothing here: {findings:?}"
    );
}

#[test]
fn cross_module_helper_flow_is_found() {
    let report = xtask::run(&case_root("cross_module"), &r1_cfg(), false).unwrap();
    assert!(report.failed, "{:?}", report.findings);
    let live = live(&report.findings);
    assert!(
        live.iter().any(|f| f.file == "crates/app2/src/frame.rs"
            && f.message.contains("slice index computed from peer input")
            && f.message.contains("payload_at")),
        "{live:?}"
    );
    let fdg = live.iter().find(|f| f.message.contains("payload_at")).unwrap();
    assert!(fdg.trace.iter().any(|s| s.contains("serve")), "{:?}", fdg.trace);
}

#[test]
fn validated_flow_stays_clean() {
    let report = xtask::run(&case_root("validation_killed"), &r1_cfg(), false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn justified_pragma_suppresses_a_taint_finding_but_reports_it() {
    let report = xtask::run(&case_root("pragma_suppressed"), &r1_cfg(), false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    let suppressed: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r1-panic-freedom" && !f.is_live())
        .collect();
    assert_eq!(suppressed.len(), 1, "{:?}", report.findings);
    assert!(suppressed[0]
        .suppressed_by
        .as_deref()
        .unwrap()
        .contains("four-byte stack array"));
}

#[test]
fn clean_corpus_produces_no_findings() {
    let report = xtask::run(&case_root("known_clean"), &r1_cfg(), false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn json_output_carries_the_flow_trace() {
    let report = xtask::run(&case_root("known_flow"), &r1_cfg(), false).unwrap();
    let json = xtask::render_json(&report);
    assert!(json.contains("\"trace\":[\""), "{json}");
    assert!(json.contains("serve"), "{json}");
    assert!(json.contains("decode_header"), "{json}");
}
