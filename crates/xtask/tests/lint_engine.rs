//! End-to-end tests of the s2-lint engine against the fixture tree in
//! `tests/fixtures/` (fixtures are data, not compile targets), plus the
//! workspace self-check: the shipped tree must be clean under
//! `--deny-all`.

use std::path::{Path, PathBuf};
use xtask::config::{self, Config};
use xtask::rules::{Finding, RULE_PRAGMA};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Builds a one-rule config scoping `rule` to `path` (fixture-relative).
fn scoped(rule: &str, path: &str, level: &str) -> Config {
    config::parse(&format!(
        "[rules.{rule}]\nlevel = \"{level}\"\npaths = [\"{path}\"]\n"
    ))
    .expect("fixture config parses")
}

fn live(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.is_live()).collect()
}

#[test]
fn r1_fixture_violations_are_all_found() {
    let cfg = scoped("r1-panic-freedom", "r1_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let lines: Vec<u32> = live(&report.findings).iter().map(|f| f.line).collect();
    // indexing, unwrap, expect, panic!, unreachable!
    assert_eq!(lines, vec![5, 6, 7, 9, 12], "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .all(|f| f.rule == "r1-panic-freedom" && f.file == "r1_violations.rs"));
}

#[test]
fn r1_clean_fixture_passes() {
    let cfg = scoped("r1-panic-freedom", "r1_clean.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    assert!(report.findings.is_empty());
}

#[test]
fn r2_fixture_flags_every_hash_container() {
    let cfg = scoped("r2-deterministic-iteration", "r2_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let lines: Vec<u32> = live(&report.findings).iter().map(|f| f.line).collect();
    // imports (3, 4), signature use (6), return type + collect (13)
    assert_eq!(lines, vec![3, 4, 6, 13], "{:?}", report.findings);
}

#[test]
fn r3_fixture_flags_clock_and_rng() {
    let cfg = scoped("r3-no-wallclock-rng", "r3_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let lines: Vec<u32> = live(&report.findings).iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![3, 4, 6, 7, 11, 12, 13], "{:?}", report.findings);
}

#[test]
fn r5_fixture_flags_raw_clock_types() {
    let cfg = scoped("r5-obs-clock", "r5_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let lines: Vec<u32> = live(&report.findings).iter().map(|f| f.line).collect();
    // imports (3, 4), Instant::now (7), signature + SystemTime::now (11, 12)
    assert_eq!(lines, vec![3, 4, 7, 11, 12], "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .all(|f| f.rule == "r5-obs-clock" && f.file == "r5_violations.rs"));
}

#[test]
fn r4_fixture_permits_only_the_serialize_crossing() {
    let cfg = scoped("r4-bdd-node-boundary", "r4_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let lines: Vec<u32> = live(&report.findings).iter().map(|f| f.line).collect();
    // Line 4 (`use s2_bdd::serialize::serialize`) is sanctioned; lines
    // 5 and 7 carry the raw-handle uses.
    assert!(!lines.contains(&4), "{lines:?}");
    assert_eq!(lines, vec![5, 5, 7, 7, 7], "{:?}", report.findings);
}

#[test]
fn justified_pragma_suppresses_and_is_reported() {
    let cfg = scoped("r1-panic-freedom", "pragma_allowed.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.line, 6);
    assert!(f
        .suppressed_by
        .as_deref()
        .unwrap()
        .contains("length asserted"));
}

#[test]
fn unjustified_pragma_does_not_suppress_and_is_itself_flagged() {
    let cfg = scoped("r1-panic-freedom", "pragma_unjustified.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.failed);
    let live = live(&report.findings);
    assert_eq!(live.len(), 2, "{:?}", report.findings);
    assert!(live
        .iter()
        .any(|f| f.rule == "r1-panic-freedom" && f.line == 6));
    assert!(live.iter().any(|f| f.rule == RULE_PRAGMA && f.line == 5));
}

#[test]
fn cfg_test_code_is_exempt() {
    let cfg = config::parse(
        "[rules.r1-panic-freedom]\npaths = [\"test_code.rs\"]\n\
         [rules.r2-deterministic-iteration]\npaths = [\"test_code.rs\"]\n",
    )
    .unwrap();
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(!report.failed, "{:?}", report.findings);
    assert!(report.findings.is_empty());
}

#[test]
fn warn_level_reports_but_passes_until_deny_all() {
    let cfg = scoped("r1-panic-freedom", "r1_violations.rs", "warn");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(!report.failed, "warn findings must not fail the run");
    assert_eq!(report.findings.len(), 5);
    assert!(report.findings.iter().all(|f| !f.is_live()));

    let promoted = xtask::run(&fixture_root(), &cfg, true).unwrap();
    assert!(promoted.failed, "--deny-all promotes warn to deny");
    assert_eq!(live(&promoted.findings).len(), 5);
}

#[test]
fn directory_paths_expand_recursively_and_unknown_rules_error() {
    // "." covers every fixture; r3 only fires in r3_violations.rs.
    let cfg = scoped("r3-no-wallclock-rng", ".", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    assert!(report.files_scanned >= 8, "{}", report.files_scanned);
    // r3 only fires in its own fixture; the sweep also surfaces the
    // hygiene finding for the bare pragma in pragma_unjustified.rs.
    for f in live(&report.findings) {
        match f.rule.as_str() {
            // The r5 fixture reuses the clock identifiers r3 also bans,
            // so a full-tree r3 sweep fires in both fixtures.
            "r3-no-wallclock-rng" => assert!(
                f.file.ends_with("r3_violations.rs") || f.file.ends_with("r5_violations.rs"),
                "{f:?}"
            ),
            r => {
                assert_eq!(r, RULE_PRAGMA, "{f:?}");
                assert!(f.file.ends_with("pragma_unjustified.rs"), "{f:?}");
            }
        }
    }

    let bogus = config::parse("[rules.r9-imaginary]\npaths = [\".\"]\n").unwrap();
    assert!(xtask::run(&fixture_root(), &bogus, false).is_err());
}

#[test]
fn json_output_carries_rule_file_line_and_suppression() {
    let cfg = scoped("r1-panic-freedom", "pragma_allowed.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    let json = xtask::render_json(&report);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\":\"r1-panic-freedom\""));
    assert!(json.contains("\"file\":\"pragma_allowed.rs\""));
    assert!(json.contains("\"line\":6"));
    assert!(json.contains("\"suppressed\":true"));
    assert!(json.contains("length asserted"));

    let cfg = scoped("r1-panic-freedom", "r1_violations.rs", "deny");
    let report = xtask::run(&fixture_root(), &cfg, false).unwrap();
    let json = xtask::render_json(&report);
    assert!(json.contains("\"suppressed\":false"));
    assert!(json.contains("\"justification\":null"));
}

/// The self-check: the shipped workspace must be clean under the
/// shipped config in `--deny-all` mode, and every suppression must
/// carry a written justification.
#[test]
fn workspace_is_lint_clean_under_deny_all() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("s2-lint.toml")).expect("s2-lint.toml");
    let cfg = config::parse(&text).expect("shipped config parses");
    let report = xtask::run(&root, &cfg, true).expect("lint run");
    let live = live(&report.findings);
    assert!(
        live.is_empty(),
        "workspace has live lint findings:\n{}",
        xtask::render_human(&report)
    );
    for f in &report.findings {
        let why = f.suppressed_by.as_deref().unwrap_or("");
        assert!(
            why.len() > 10,
            "suppression without a real justification: {f:?}"
        );
    }
}
