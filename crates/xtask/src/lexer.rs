//! A minimal Rust token scanner for s2-lint.
//!
//! The environment vendors no `syn`, so the lint pass runs on a
//! purpose-built lexer instead of a full AST. It produces the three
//! things the rules and the call-graph indexer need and nothing more:
//!
//! * a token stream (identifiers, punctuation, literals) with line *and
//!   column* numbers, with comments and string/char literal *contents*
//!   removed so rule matching never fires inside text;
//! * the `// s2-lint: allow(rule): justification` and
//!   `// s2-lint: source(label): reason` pragmas, each bound to the line
//!   of the next code token (so a pragma annotates exactly the statement
//!   or item it precedes, trailing or preceding);
//! * the line spans of `#[cfg(test)]` items, so test code is exempt.
//!
//! The scanner understands line/block comments (nested), string
//! literals with escapes (including escaped newlines), raw strings with
//! `#` fences, byte strings, raw identifiers (`r#fn`), and lifetimes
//! (so `'a` does not start a "string"). Multi-line literals are
//! recorded at their *start* line so pragma binding and finding
//! positions stay accurate after long embedded text.

/// Token kinds s2-lint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String/char/number literal (contents not retained for strings).
    Literal,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The text (for `Punct`, a single character; for string literals,
    /// the placeholder `"\"\""`).
    pub text: String,
    /// 1-based source line (start line for multi-line literals).
    pub line: u32,
    /// 1-based column of the token's first byte.
    pub col: u32,
}

/// A `// s2-lint: allow(rule[, rule...])[: justification]` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment is on.
    pub line: u32,
    /// Rules the pragma allows.
    pub rules: Vec<String>,
    /// Free-text justification after the closing paren (may be empty —
    /// which is itself a lint violation).
    pub justification: String,
    /// Line of the first code token after the pragma: the line the
    /// pragma suppresses (besides its own, for trailing pragmas).
    pub applies_to_line: u32,
}

/// A `// s2-lint: source(label): reason` pragma marking the next
/// function as a taint source — its return value carries peer bytes
/// that arrived through an indirection the call graph cannot see
/// (queue handoff, channel, shared buffer).
#[derive(Debug, Clone)]
pub struct SourcePragma {
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// The label inside the parens (e.g. `peer-input`).
    pub label: String,
    /// Why this function re-introduces taint (mandatory for the pragma
    /// to take effect).
    pub reason: String,
    /// Line of the first code token after the pragma (the `fn` item it
    /// annotates).
    pub applies_to_line: u32,
}

/// Lexing output: the full token stream plus pragma and test-span
/// side tables.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Code tokens in order.
    pub toks: Vec<Tok>,
    /// Allow pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Source pragmas found in comments.
    pub sources: Vec<SourcePragma>,
    /// Sanitizer pragmas (same shape as source pragmas): the annotated
    /// function's return value is clean even when its arguments are
    /// tainted — e.g. a length bounded with `.min(LIMIT)`.
    pub sanitizers: Vec<SourcePragma>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl Scanned {
    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Pragmas allowing `rule` on `line` (the pragma's own line or the
    /// first code line after it).
    pub fn pragma_for(&self, rule: &str, line: u32) -> Option<&Pragma> {
        self.pragmas.iter().find(|p| {
            (p.line == line || p.applies_to_line == line)
                && p.rules.iter().any(|r| r == rule)
        })
    }

    /// The source pragma annotating the item that starts on `line`.
    pub fn source_for(&self, line: u32) -> Option<&SourcePragma> {
        self.sources
            .iter()
            .find(|p| p.applies_to_line == line || p.line == line)
    }

    /// The sanitizer pragma annotating the item that starts on `line`.
    pub fn sanitizer_for(&self, line: u32) -> Option<&SourcePragma> {
        self.sanitizers
            .iter()
            .find(|p| p.applies_to_line == line || p.line == line)
    }
}

/// Scans `src` into tokens, pragmas, and test spans.
pub fn scan(src: &str) -> Scanned {
    let mut out = Scanned::default();
    let b = src.as_bytes();
    let mut cur = Cursor {
        b,
        i: 0,
        line: 1,
        line_start: 0,
    };
    // Pragmas whose `applies_to_line` is still unknown (no code token
    // seen after them yet); indices into out.pragmas / out.sources.
    let mut open_allows: Vec<usize> = Vec::new();
    let mut open_sources: Vec<usize> = Vec::new();
    let mut open_sanitizers: Vec<usize> = Vec::new();

    macro_rules! bind_open_pragmas {
        () => {
            for idx in open_allows.drain(..) {
                out.pragmas[idx].applies_to_line = cur.line;
            }
            for idx in open_sources.drain(..) {
                out.sources[idx].applies_to_line = cur.line;
            }
            for idx in open_sanitizers.drain(..) {
                out.sanitizers[idx].applies_to_line = cur.line;
            }
        };
    }

    while cur.i < b.len() {
        let c = b[cur.i];
        match c {
            b'\n' => cur.newline(),
            b' ' | b'\t' | b'\r' => cur.i += 1,
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.i;
                while cur.i < b.len() && b[cur.i] != b'\n' {
                    cur.i += 1;
                }
                let comment = &src[start..cur.i];
                match parse_pragma(comment, cur.line) {
                    Some(ParsedPragma::Allow(p)) => {
                        out.pragmas.push(p);
                        open_allows.push(out.pragmas.len() - 1);
                    }
                    Some(ParsedPragma::Source(p)) => {
                        out.sources.push(p);
                        open_sources.push(out.sources.len() - 1);
                    }
                    Some(ParsedPragma::Sanitizer(p)) => {
                        out.sanitizers.push(p);
                        open_sanitizers.push(out.sanitizers.len() - 1);
                    }
                    None => {}
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Block comment, nested per Rust rules.
                let mut depth = 1;
                cur.i += 2;
                while cur.i < b.len() && depth > 0 {
                    if b[cur.i] == b'\n' {
                        cur.newline();
                    } else if b[cur.i] == b'/' && cur.peek(1) == Some(b'*') {
                        depth += 1;
                        cur.i += 2;
                    } else if b[cur.i] == b'*' && cur.peek(1) == Some(b'/') {
                        depth -= 1;
                        cur.i += 2;
                    } else {
                        cur.i += 1;
                    }
                }
            }
            b'"' => {
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                cur.skip_string();
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".into(),
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_raw_string(b, cur.i) => {
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                cur.skip_raw_string();
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".into(),
                    line,
                    col,
                });
            }
            b'r' if cur.peek(1) == Some(b'#')
                && cur
                    .peek(2)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic()) =>
            {
                // Raw identifier `r#fn`: lex as the bare identifier so
                // keyword-driven passes (fn indexing, test spans) are
                // not confused by a stray `#` + keyword pair.
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                cur.i += 2;
                let start = cur.i;
                while cur.i < b.len() && (b[cur.i] == b'_' || b[cur.i].is_ascii_alphanumeric()) {
                    cur.i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..cur.i].to_string(),
                    line,
                    col,
                });
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                cur.i += 1;
                cur.skip_char();
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "b''".into(),
                    line,
                    col,
                });
            }
            b'\'' => {
                bind_open_pragmas!();
                if is_lifetime(b, cur.i) {
                    // 'ident — consume the quote, the ident lexes next.
                    cur.i += 1;
                } else {
                    let (line, col) = (cur.line, cur.col());
                    cur.skip_char();
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "''".into(),
                        line,
                        col,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                let start = cur.i;
                while cur.i < b.len() && (b[cur.i] == b'_' || b[cur.i].is_ascii_alphanumeric()) {
                    cur.i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..cur.i].to_string(),
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                bind_open_pragmas!();
                let (line, col) = (cur.line, cur.col());
                let start = cur.i;
                while cur.i < b.len()
                    && (b[cur.i].is_ascii_alphanumeric() || b[cur.i] == b'_' || b[cur.i] == b'.')
                {
                    // Stop a range expression `0..x` from being eaten as
                    // one number.
                    if b[cur.i] == b'.' && cur.peek(1) == Some(b'.') {
                        break;
                    }
                    cur.i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..cur.i].to_string(),
                    line,
                    col,
                });
            }
            _ => {
                bind_open_pragmas!();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line: cur.line,
                    col: cur.col(),
                });
                cur.i += 1;
            }
        }
    }

    find_test_spans(&mut out);
    out
}

/// Byte cursor with line/column bookkeeping.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    line_start: usize,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn col(&self) -> u32 {
        (self.i - self.line_start + 1) as u32
    }

    fn newline(&mut self) {
        self.line += 1;
        self.i += 1;
        self.line_start = self.i;
    }

    /// Skips a `'c'` char literal; `self.i` points at the opening quote.
    fn skip_char(&mut self) {
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    // An escape; `\<newline>` still counts the line.
                    if self.peek(1) == Some(b'\n') {
                        self.i += 1;
                        self.newline();
                    } else {
                        self.i += 2;
                    }
                }
                b'\'' => {
                    self.i += 1;
                    return;
                }
                b'\n' => {
                    // Malformed; bail at end of line.
                    self.newline();
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Skips a `"..."` string literal; `self.i` points at the quote.
    fn skip_string(&mut self) {
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    // `\<newline>` is a line continuation: the newline
                    // must still advance the line counter.
                    if self.peek(1) == Some(b'\n') {
                        self.i += 1;
                        self.newline();
                    } else {
                        self.i += 2;
                    }
                }
                b'\n' => self.newline(),
                b'"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Skips a raw / byte / raw-byte string starting at `self.i`.
    fn skip_raw_string(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] == b'r' || self.b[self.i] == b'b') {
            self.i += 1;
        }
        let mut fences = 0;
        while self.i < self.b.len() && self.b[self.i] == b'#' {
            fences += 1;
            self.i += 1;
        }
        if self.i < self.b.len() && self.b[self.i] == b'"' {
            self.i += 1;
        }
        // Scan for `"` followed by `fences` hashes.
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.newline();
                continue;
            }
            if self.b[self.i] == b'"' {
                let mut k = 0;
                while k < fences && self.peek(1 + k).map(|c| c == b'#').unwrap_or(false) {
                    k += 1;
                }
                if k == fences {
                    self.i += 1 + fences;
                    return;
                }
            }
            self.i += 1;
        }
    }
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'x is a char literal iff a closing quote follows the single
    // character; 'ident (no closing quote after one char) is a lifetime.
    // `'_'` is a char literal; `'_` followed by non-quote is a lifetime.
    if i + 1 >= b.len() {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1 == b'_' || c1.is_ascii_alphabetic()) {
        return false; // '\n', '(' etc: a char literal or malformed
    }
    // If the char after the single ident-char is a quote, it's 'x'.
    !(i + 2 < b.len() && b[i + 2] == b'\'')
}

fn starts_raw_string(b: &[u8], i: usize) -> bool {
    // r" r#" br" b" rb# etc. Check the next few bytes for an optional
    // b/r pair followed by #* and a quote.
    let mut j = i;
    let mut saw_r = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        saw_r |= b[j] == b'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        // b"..." — a plain byte string.
        return j < b.len() && b[j] == b'"' && j - i <= 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

enum ParsedPragma {
    Allow(Pragma),
    Source(SourcePragma),
    Sanitizer(SourcePragma),
}

/// Parses a `// s2-lint: allow(...)`, `// s2-lint: source(...)`, or
/// `// s2-lint: sanitizer(...)` comment.
fn parse_pragma(comment: &str, line: u32) -> Option<ParsedPragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("s2-lint:")?.trim();
    if let Some(rest) = rest.strip_prefix("allow") {
        let rest = rest.trim_start().strip_prefix('(')?;
        let close = rest.find(')')?;
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return None;
        }
        let after = rest[close + 1..].trim();
        let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
        return Some(ParsedPragma::Allow(Pragma {
            line,
            rules,
            justification,
            applies_to_line: line,
        }));
    }
    for (prefix, sanitizer) in [("source", false), ("sanitizer", true)] {
        let Some(rest) = rest.strip_prefix(prefix) else {
            continue;
        };
        let rest = rest.trim_start().strip_prefix('(')?;
        let close = rest.find(')')?;
        let label = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
        let p = SourcePragma {
            line,
            label,
            reason,
            applies_to_line: line,
        };
        return Some(if sanitizer {
            ParsedPragma::Sanitizer(p)
        } else {
            ParsedPragma::Source(p)
        });
    }
    None
}

/// Finds line spans of items annotated `#[cfg(test)]` (or
/// `#[cfg(all(test, ...))]` — any attribute whose argument list contains
/// the `test` token) by brace matching from the token stream.
fn find_test_spans(out: &mut Scanned) {
    let toks = &out.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            // Collect the attribute tokens up to the matching ']'.
            let attr_start = i;
            let mut depth = 0;
            let mut j = i + 1;
            let mut is_test_cfg = false;
            let mut saw_cfg = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" => saw_cfg = true,
                    "test" if saw_cfg => is_test_cfg = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_cfg {
                // The item body: first '{' after the attribute, to its
                // matching '}' (covers `mod`, `fn`, `impl`). Items with
                // no braces (e.g. `use`) end at the next ';'.
                let mut k = j + 1;
                let mut brace_depth = 0;
                let mut started = false;
                let start_line = toks[attr_start].line;
                let mut end_line = start_line;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            brace_depth += 1;
                            started = true;
                        }
                        "}" => {
                            brace_depth -= 1;
                            if started && brace_depth == 0 {
                                end_line = toks[k].line;
                                break;
                            }
                        }
                        ";" if !started && brace_depth == 0 => {
                            end_line = toks[k].line;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k >= toks.len() {
                    end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
                }
                out.test_spans.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_tokenize() {
        let s = scan(r#"let x = "unwrap() panic!"; // unwrap in comment"#);
        assert!(s.toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        let idents: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"a"), "lifetime ident lexed: {idents:?}");
        assert!(idents.contains(&"str"));
    }

    #[test]
    fn columns_are_tracked() {
        let s = scan("let x = 1;\n  let y = 2;");
        let x = s.toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (1, 5));
        let y = s.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!((y.line, y.col), (2, 7));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        let s = scan("let a = \"one\\\ntwo\";\nlet b = 1;");
        let b = s.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3, "{:?}", s.toks);
    }

    #[test]
    fn multiline_literals_report_their_start_line() {
        let s = scan("let a = \"x\ny\nz\";\nlet b = r#\"p\nq\"#;");
        let lits: Vec<u32> = s
            .toks
            .iter()
            .filter(|t| t.text == "\"\"")
            .map(|t| t.line)
            .collect();
        assert_eq!(lits, vec![1, 4], "{:?}", s.toks);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let s = scan("let r#fn = 1; call(r#type);");
        let idents: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "fn", "call", "type"]);
        assert!(s.toks.iter().all(|t| t.text != "#"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let s = scan("/* outer /* inner unwrap() */ still comment */ let x = 1;");
        assert!(s.toks.iter().all(|t| t.text != "unwrap"));
        assert!(s.toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_literals() {
        let s = scan(r##"let m = b"MAGIC unwrap()"; let c = b'x'; let r = br#"panic!"#;"##);
        assert!(s.toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        let names: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(names.contains(&"m") && names.contains(&"c") && names.contains(&"r"));
    }

    #[test]
    fn pragma_binds_to_next_code_line() {
        let src = "\
// s2-lint: allow(r1-panic-freedom): index is masked
// continued explanation
let x = v[0];
";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1);
        let p = &s.pragmas[0];
        assert_eq!(p.line, 1);
        assert_eq!(p.applies_to_line, 3);
        assert_eq!(p.justification, "index is masked");
        assert!(s.pragma_for("r1-panic-freedom", 3).is_some());
        assert!(s.pragma_for("r2-deterministic-iteration", 3).is_none());
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "let x = v[0]; // s2-lint: allow(r1-panic-freedom): bounded above\n";
        let s = scan(src);
        assert!(s.pragma_for("r1-panic-freedom", 1).is_some());
    }

    #[test]
    fn pragma_without_justification_is_kept_empty() {
        let s = scan("// s2-lint: allow(r3-no-wallclock-rng)\nlet t = 1;\n");
        assert_eq!(s.pragmas.len(), 1);
        assert!(s.pragmas[0].justification.is_empty());
    }

    #[test]
    fn source_pragma_binds_to_the_next_item() {
        let src = "\
// s2-lint: source(peer-input): frames queued by acceptor threads carry raw peer bytes
pub fn pop(&self) -> Option<Bytes> { None }
";
        let s = scan(src);
        assert_eq!(s.sources.len(), 1);
        let p = &s.sources[0];
        assert_eq!(p.label, "peer-input");
        assert!(p.reason.contains("acceptor"));
        assert_eq!(p.applies_to_line, 2);
        assert!(s.source_for(2).is_some());
        assert!(s.source_for(3).is_none());
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "\
fn prod() { v[0]; }

#[cfg(test)]
mod tests {
    fn t() { v[1]; }
}
";
        let s = scan(src);
        assert!(!s.in_test_code(1));
        assert!(s.in_test_code(4));
        assert!(s.in_test_code(5));
        assert!(!s.in_test_code(7));
    }

    #[test]
    fn raw_strings_are_skipped() {
        let s = scan("let x = r#\"unwrap() \"quoted\" panic!\"#; let y = 1;");
        assert!(s.toks.iter().all(|t| t.text != "unwrap"));
        assert!(s.toks.iter().any(|t| t.text == "y"));
    }
}
