//! A minimal Rust token scanner for s2-lint.
//!
//! The environment vendors no `syn`, so the lint pass runs on a
//! purpose-built lexer instead of a full AST. It produces the three
//! things the rules need and nothing more:
//!
//! * a token stream (identifiers, punctuation, literals) with line
//!   numbers, with comments and string/char literal *contents* removed
//!   so rule matching never fires inside text;
//! * the `// s2-lint: allow(rule): justification` pragmas, each bound
//!   to the line of the next code token (so a pragma suppresses exactly
//!   the statement it annotates, trailing or preceding);
//! * the line spans of `#[cfg(test)]` items, so test code is exempt.
//!
//! The scanner understands line/block comments (nested), string
//! literals with escapes, raw strings with `#` fences, byte strings,
//! char literals, and lifetimes (so `'a` does not start a "string").

/// Token kinds s2-lint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String/char/number literal (contents not retained for strings).
    Literal,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The text (for `Punct`, a single character; for string literals,
    /// the placeholder `"\"\""`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `// s2-lint: allow(rule[, rule...])[: justification]` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment is on.
    pub line: u32,
    /// Rules the pragma allows.
    pub rules: Vec<String>,
    /// Free-text justification after the closing paren (may be empty —
    /// which is itself a lint violation).
    pub justification: String,
    /// Line of the first code token after the pragma: the line the
    /// pragma suppresses (besides its own, for trailing pragmas).
    pub applies_to_line: u32,
}

/// Lexing output: the full token stream plus pragma and test-span
/// side tables.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Code tokens in order.
    pub toks: Vec<Tok>,
    /// Pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl Scanned {
    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Pragmas allowing `rule` on `line` (the pragma's own line or the
    /// first code line after it).
    pub fn pragma_for(&self, rule: &str, line: u32) -> Option<&Pragma> {
        self.pragmas.iter().find(|p| {
            (p.line == line || p.applies_to_line == line)
                && p.rules.iter().any(|r| r == rule)
        })
    }
}

/// Scans `src` into tokens, pragmas, and test spans.
pub fn scan(src: &str) -> Scanned {
    let mut out = Scanned::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Pragmas whose `applies_to_line` is still unknown (no code token
    // seen after them yet); indices into out.pragmas.
    let mut open_pragmas: Vec<usize> = Vec::new();

    macro_rules! bind_open_pragmas {
        () => {
            if !open_pragmas.is_empty() {
                for idx in open_pragmas.drain(..) {
                    out.pragmas[idx].applies_to_line = line;
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                if let Some(p) = parse_pragma(comment, line) {
                    out.pragmas.push(p);
                    open_pragmas.push(out.pragmas.len() - 1);
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested per Rust rules.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                bind_open_pragmas!();
                i = skip_string(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".into(),
                    line,
                });
            }
            b'r' | b'b'
                if starts_raw_string(b, i) =>
            {
                bind_open_pragmas!();
                i = skip_raw_string(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".into(),
                    line,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                bind_open_pragmas!();
                i = skip_char(b, i + 1, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "b''".into(),
                    line,
                });
            }
            b'\'' => {
                bind_open_pragmas!();
                if is_lifetime(b, i) {
                    // 'ident — consume the quote, the ident lexes next.
                    i += 1;
                } else {
                    i = skip_char(b, i, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "''".into(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                bind_open_pragmas!();
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                bind_open_pragmas!();
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a range expression `0..x` from being eaten as
                    // one number.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                bind_open_pragmas!();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }

    find_test_spans(&mut out);
    out
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'x is a char literal iff a closing quote follows the single
    // character; 'ident (no closing quote after one char) is a lifetime.
    // `'_'` is a char literal; `'_` followed by non-quote is a lifetime.
    if i + 1 >= b.len() {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1 == b'_' || c1.is_ascii_alphabetic()) {
        return false; // '\n', '(' etc: a char literal or malformed
    }
    // If the char after the single ident-char is a quote, it's 'x'.
    !(i + 2 < b.len() && b[i + 2] == b'\'')
}

fn skip_char(b: &[u8], start: usize, line: &mut u32) -> usize {
    // start points at the opening quote.
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                // Malformed; bail at end of line.
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn starts_raw_string(b: &[u8], i: usize) -> bool {
    // r" r#" br" b" rb# etc. Check the next few bytes for an optional
    // b/r pair followed by #* and a quote.
    let mut j = i;
    let mut saw_r = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        saw_r |= b[j] == b'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        // b"..." — a plain byte string.
        return j < b.len() && b[j] == b'"' && j - i <= 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn skip_raw_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut fences = 0;
    while i < b.len() && b[i] == b'#' {
        fences += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    // Scan for `"` followed by `fences` hashes.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0;
            while k < fences && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == fences {
                return i + 1 + fences;
            }
        }
        i += 1;
    }
    i
}

/// Parses a `// s2-lint: allow(rule[, rule]) [: justification]` comment.
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("s2-lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let after = rest[close + 1..].trim();
    let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some(Pragma {
        line,
        rules,
        justification,
        applies_to_line: line,
    })
}

/// Finds line spans of items annotated `#[cfg(test)]` (or
/// `#[cfg(all(test, ...))]` — any attribute whose argument list contains
/// the `test` token) by brace matching from the token stream.
fn find_test_spans(out: &mut Scanned) {
    let toks = &out.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            // Collect the attribute tokens up to the matching ']'.
            let attr_start = i;
            let mut depth = 0;
            let mut j = i + 1;
            let mut is_test_cfg = false;
            let mut saw_cfg = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" => saw_cfg = true,
                    "test" if saw_cfg => is_test_cfg = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_cfg {
                // The item body: first '{' after the attribute, to its
                // matching '}' (covers `mod`, `fn`, `impl`). Items with
                // no braces (e.g. `use`) end at the next ';'.
                let mut k = j + 1;
                let mut brace_depth = 0;
                let mut started = false;
                let start_line = toks[attr_start].line;
                let mut end_line = start_line;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            brace_depth += 1;
                            started = true;
                        }
                        "}" => {
                            brace_depth -= 1;
                            if started && brace_depth == 0 {
                                end_line = toks[k].line;
                                break;
                            }
                        }
                        ";" if !started && brace_depth == 0 => {
                            end_line = toks[k].line;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k >= toks.len() {
                    end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
                }
                out.test_spans.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_tokenize() {
        let s = scan(r#"let x = "unwrap() panic!"; // unwrap in comment"#);
        assert!(s.toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        let idents: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"a"), "lifetime ident lexed: {idents:?}");
        assert!(idents.contains(&"str"));
    }

    #[test]
    fn pragma_binds_to_next_code_line() {
        let src = "\
// s2-lint: allow(r1-panic-freedom): index is masked
// continued explanation
let x = v[0];
";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1);
        let p = &s.pragmas[0];
        assert_eq!(p.line, 1);
        assert_eq!(p.applies_to_line, 3);
        assert_eq!(p.justification, "index is masked");
        assert!(s.pragma_for("r1-panic-freedom", 3).is_some());
        assert!(s.pragma_for("r2-deterministic-iteration", 3).is_none());
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "let x = v[0]; // s2-lint: allow(r1-panic-freedom): bounded above\n";
        let s = scan(src);
        assert!(s.pragma_for("r1-panic-freedom", 1).is_some());
    }

    #[test]
    fn pragma_without_justification_is_kept_empty() {
        let s = scan("// s2-lint: allow(r3-no-wallclock-rng)\nlet t = 1;\n");
        assert_eq!(s.pragmas.len(), 1);
        assert!(s.pragmas[0].justification.is_empty());
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "\
fn prod() { v[0]; }

#[cfg(test)]
mod tests {
    fn t() { v[1]; }
}
";
        let s = scan(src);
        assert!(!s.in_test_code(1));
        assert!(s.in_test_code(4));
        assert!(s.in_test_code(5));
        assert!(!s.in_test_code(7));
    }

    #[test]
    fn raw_strings_are_skipped() {
        let s = scan("let x = r#\"unwrap() \"quoted\" panic!\"#; let y = 1;");
        assert!(s.toks.iter().all(|t| t.text != "unwrap"));
        assert!(s.toks.iter().any(|t| t.text == "y"));
    }
}
