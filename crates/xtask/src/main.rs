//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `lint [--format json] [--deny-all] [--config <path>] [--root <dir>]`
//!   — run the s2-lint static-analysis pass (see `xtask::run`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask command {other:?}; available: lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--format json] [--deny-all] [--config <path>] [--root <dir>]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut format_json = false;
    let mut deny_all = false;
    let mut config_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!("--format takes `json` or `human`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--config needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace (xtask lives at <root>/crates/xtask).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let config_path = config_path.unwrap_or_else(|| root.join("s2-lint.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("s2-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match xtask::config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("s2-lint: bad config {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    match xtask::run(&root, &cfg, deny_all) {
        Ok(report) => {
            if format_json {
                println!("{}", xtask::render_json(&report));
            } else {
                print!("{}", xtask::render_human(&report));
            }
            if report.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("s2-lint: {e}");
            ExitCode::from(2)
        }
    }
}
