//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `lint [--format json] [--deny-all] [--config <path>] [--root <dir>]`
//!   — run the s2-lint static-analysis pass (see `xtask::run`).
//! * `trace-check <trace.json> [--require <span>]... [--min-lanes <n>]`
//!   — validate a Chrome trace emitted by `--trace-out` (see
//!   `xtask::obscheck`). With no `--require`, the S2 controller spans
//!   (`verify`, `cp.round`, `barrier`) are required.
//! * `obs-symbols <binary> [--needle <s>]...` — fail if a compiled
//!   binary contains tracing span-name literals (the obs-off
//!   compile-time-zero check).
//! * `expo-check <metrics.txt> [--require <series>]...` — validate a
//!   Prometheus text-exposition scrape (as returned by the daemon's
//!   `metrics` admin command) and require specific series.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some("trace-check") => trace_check(args.collect()),
        Some("obs-symbols") => obs_symbols(args.collect()),
        Some("expo-check") => expo_check(args.collect()),
        Some(other) => {
            eprintln!(
                "unknown xtask command {other:?}; available: lint, trace-check, obs-symbols, expo-check"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo xtask <command>\n  \
                 lint [--format json] [--deny-all] [--config <path>] [--root <dir>]\n  \
                 trace-check <trace.json> [--require <span>]... [--min-lanes <n>]\n  \
                 obs-symbols <binary> [--needle <s>]...\n  \
                 expo-check <metrics.txt> [--require <series>]..."
            );
            ExitCode::from(2)
        }
    }
}

fn expo_check(args: Vec<String>) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => match it.next() {
                Some(series) => required.push(series),
                None => {
                    eprintln!("--require needs a series substring");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown expo-check flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("expo-check needs a metrics file path");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("expo-check: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match xtask::obscheck::check_expo(&text, &required) {
        Ok((families, samples)) => {
            println!(
                "expo-check: {} OK — {families} familie(s), {samples} sample(s)",
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("expo-check: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn trace_check(args: Vec<String>) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut min_lanes = 1usize;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => match it.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require needs a span name");
                    return ExitCode::from(2);
                }
            },
            "--min-lanes" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => min_lanes = n,
                None => {
                    eprintln!("--min-lanes needs a number");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown trace-check flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("trace-check needs a trace file path");
        return ExitCode::from(2);
    };
    if required.is_empty() {
        required = ["verify", "cp.round", "barrier"]
            .map(String::from)
            .to_vec();
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-check: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match xtask::obscheck::check_trace(&text, &required, min_lanes) {
        Ok(s) => {
            println!(
                "trace-check: {} OK — {} events, {} lane(s), {} span name(s)",
                path.display(),
                s.events,
                s.lanes.len(),
                s.names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-check: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn obs_symbols(args: Vec<String>) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut needles: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--needle" => match it.next() {
                Some(n) => needles.push(n),
                None => {
                    eprintln!("--needle needs a string");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown obs-symbols flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("obs-symbols needs a binary path");
        return ExitCode::from(2);
    };
    if needles.is_empty() {
        needles = xtask::obscheck::SPAN_NEEDLES.map(String::from).to_vec();
    }
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("obs-symbols: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let needle_refs: Vec<&str> = needles.iter().map(String::as_str).collect();
    let hits = xtask::obscheck::find_symbols(&bytes, &needle_refs);
    if hits.is_empty() {
        println!(
            "obs-symbols: {} OK — none of {} span-name needle(s) present",
            path.display(),
            needle_refs.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "obs-symbols: {} contains span names ({}); the obs-off build must not",
            path.display(),
            hits.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut format_json = false;
    let mut deny_all = false;
    let mut config_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!("--format takes `json` or `human`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--config needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace (xtask lives at <root>/crates/xtask).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let config_path = config_path.unwrap_or_else(|| root.join("s2-lint.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("s2-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match xtask::config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("s2-lint: bad config {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    match xtask::run(&root, &cfg, deny_all) {
        Ok(report) => {
            if format_json {
                println!("{}", xtask::render_json(&report));
            } else {
                print!("{}", xtask::render_human(&report));
            }
            if report.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("s2-lint: {e}");
            ExitCode::from(2)
        }
    }
}
