//! Interprocedural taint analysis over the workspace call graph.
//!
//! Sources are the transport deframe entry points: any non-test
//! function that reads from a socket-backed stream (a `.read_exact` /
//! `.read_line` / `.fill_buf` / … call in a file that names a socket
//! type), plus functions annotated `// s2-lint: source(label): reason`
//! for taint that re-enters through an indirection the call graph
//! cannot see (queue handoffs, channels).
//!
//! Taint propagates two ways:
//!
//! * **expression taint** — an expression is tainted when it mentions a
//!   tainted local outside a validating context, or calls a function
//!   summarized as an *unconditional source* (returns peer bytes with
//!   no tainted inputs, e.g. a deframe wrapper);
//! * **call seeding** — passing a tainted expression as an argument
//!   taints the matching parameter of every resolved callee, worklist
//!   style, with a caller breadcrumb kept for flow traces.
//!
//! Kills (what un-taints a value): a comparison against the value
//! (`len > max`, `i < buf.len()`), `.len()`/`.is_empty()` inspection of
//! a buffer, masking (`x & 0xff`, `x % n`), clamping
//! (`.min` / `.clamp` / `.checked_*` / `.saturating_*`), and laundering
//! lookups (`.get`/`.find`/`.position`/`.binary_search` — a peer key
//! into a trusted structure yields a trusted value). Destructuring
//! `match` arms also drop taint: every decoded struct in this workspace
//! passes the bounds-checked codecs first, so a destructured field is
//! treated as validated. These are optimistic by design — the analysis
//! exists to catch *unvalidated* flows, and each kill is a validation
//! idiom the codebase actually uses.
//!
//! Sinks: panicking macros and `.unwrap()`/`.expect()` fire anywhere in
//! a taint-reached function (peer bytes steer control flow there);
//! slice indexing and allocation sizing (`vec![_; n]`,
//! `with_capacity`, `.reserve`, `.resize`, `.set_len`) fire only when
//! the index/size expression — or the indexed buffer itself — is still
//! tainted at the sink.

use crate::index::Workspace;
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Socket type names whose presence marks a file as transport-touching.
const SOCKET_TYPES: [&str; 5] = [
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
];

/// Reader methods that fill their argument with peer bytes.
const READ_FILLS: [&str; 7] = [
    "read",
    "read_exact",
    "read_to_end",
    "read_line",
    "read_until",
    "recv",
    "recv_from",
];

/// Reader methods that *return* peer bytes.
const READ_RETURNS: [&str; 1] = ["fill_buf"];

/// Methods whose result is considered validated (clean span), covering
/// both clamping of the receiver and laundering lookups by key.
const CLEAN_CALLS: [&str; 9] = [
    "min",
    "clamp",
    "get",
    "get_mut",
    "find",
    "position",
    "binary_search",
    "len",
    "is_empty",
];

/// Panic-family macros.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Byte-emitting calls that mark a function as part of the wire-encode
/// path (the R2 determinism scope).
const EMITTERS: [&str; 10] = [
    "put_u8",
    "put_u16",
    "put_u32",
    "put_u64",
    "put_i64",
    "put_slice",
    "write_all",
    "to_be_bytes",
    "to_le_bytes",
    "extend_from_slice",
];

/// Identifiers that are Rust keywords / non-bindable in expressions.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "mut"
            | "ref"
            | "in"
            | "as"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "struct"
            | "enum"
            | "self"
            | "Self"
            | "true"
            | "false"
            | "break"
            | "continue"
            | "move"
            | "where"
            | "unsafe"
            | "dyn"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "type"
            | "trait"
    )
}

/// One source→sink flow found by the taint pass.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based position of the sink.
    pub line: u32,
    /// 1-based column of the sink.
    pub col: u32,
    /// Defect description (never embeds line numbers, so finding IDs
    /// stay stable when code moves).
    pub message: String,
    /// Root→sink call chain, one rendered step per entry.
    pub trace: Vec<String>,
}

/// Result of the workspace taint pass.
pub struct Analysis {
    /// Taint roots: (fn id, why it is a source).
    pub roots: Vec<(usize, String)>,
    /// Every function taint reaches (internally or via a parameter).
    pub active: BTreeSet<usize>,
    /// Derived R1 scope: same as `active`.
    pub scope_r1: BTreeSet<usize>,
    /// Derived R2 scope, as file indices: files containing an active fn
    /// or a byte-emitting fn (the wire-encode path).
    pub scope_r2_files: BTreeSet<usize>,
    /// Derived R4 scope: active fns outside the `s2_bdd` crate (the BDD
    /// crate itself legitimately handles node ids).
    pub scope_r4: BTreeSet<usize>,
    /// R1 taint findings (panic-reachability + tainted-data sinks).
    pub findings: Vec<TaintFinding>,
    /// First-seeder breadcrumbs: callee fn → (caller fn, call line).
    pub taint_from: BTreeMap<usize, (usize, u32)>,
}

/// Per-function evaluation output.
#[derive(Default)]
struct EvalOut {
    any_taint: bool,
    root_why: Option<String>,
    /// (callee, call line, callee param names that become tainted)
    seeded: Vec<(usize, u32, BTreeSet<String>)>,
    findings: Vec<TaintFinding>,
}

struct Ctx<'a> {
    ws: &'a Workspace,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    fn_paths: Vec<Vec<String>>,
    socket_file: Vec<bool>,
}

impl<'a> Ctx<'a> {
    fn new(ws: &'a Workspace) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut fn_paths = Vec::with_capacity(ws.fns.len());
        for (i, f) in ws.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
            let mut p = vec![f.crate_name.clone()];
            p.extend(f.module.iter().cloned());
            if let Some(t) = &f.impl_type {
                p.push(t.clone());
            }
            p.push(f.name.clone());
            fn_paths.push(p);
        }
        let socket_file = ws
            .files
            .iter()
            .map(|f| {
                f.scanned.toks.iter().any(|t| {
                    t.kind == TokKind::Ident && SOCKET_TYPES.contains(&t.text.as_str())
                })
            })
            .collect();
        Ctx {
            ws,
            by_name,
            fn_paths,
            socket_file,
        }
    }

    /// Resolves a call site to candidate fn ids.
    ///
    /// Methods match by name + `self` + arity (preferring exact arity,
    /// falling back to name-only when the heuristic arg count matches
    /// nothing); capped at 4 candidates to bound trait-method
    /// over-linking. Free/associated calls resolve the leading path via
    /// the file's `use` map and `crate`/`self`/`super`/`Self`, then
    /// suffix-match against each candidate's full path.
    fn resolve(
        &self,
        caller: usize,
        path: &[String],
        name: &str,
        argc: usize,
        method: bool,
    ) -> Vec<usize> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let caller_fn = &self.ws.fns[caller];
        if method {
            let cands: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.ws.fns[i].has_self && !self.ws.fns[i].is_test)
                .collect();
            let exact: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.ws.fns[i].arity == argc)
                .collect();
            let picked = if exact.is_empty() { cands } else { exact };
            return if picked.len() > 4 { Vec::new() } else { picked };
        }
        let cands: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| !self.ws.fns[i].is_test)
            .collect();
        let file = &self.ws.files[caller_fn.file];
        if path.is_empty() {
            // Unqualified call: same file, then same crate, then a
            // workspace-unique name.
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.ws.fns[i].file == caller_fn.file && !self.ws.fns[i].has_self)
                .collect();
            let picked = if !same_file.is_empty() {
                same_file
            } else {
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.ws.fns[i].crate_name == caller_fn.crate_name
                            && !self.ws.fns[i].has_self
                    })
                    .collect();
                if !same_crate.is_empty() {
                    same_crate
                } else if cands.len() == 1 {
                    cands
                } else {
                    Vec::new()
                }
            };
            return arity_pref(self.ws, picked, argc, 6);
        }
        // `Self::helper` — the caller's impl type.
        if path[0] == "Self" {
            let picked: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    self.ws.fns[i].impl_type == caller_fn.impl_type
                        && self.ws.fns[i].crate_name == caller_fn.crate_name
                })
                .collect();
            return arity_pref(self.ws, picked, argc, 4);
        }
        // Expand the head through the use map, then crate/self/super.
        let mut segs: Vec<String> = path.to_vec();
        if let Some(full) = file.uses.get(&segs[0]) {
            let mut expanded = full.clone();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
        match segs[0].as_str() {
            "crate" => {
                segs[0] = caller_fn.crate_name.clone();
            }
            "self" => {
                let mut p = vec![caller_fn.crate_name.clone()];
                p.extend(file.module.iter().cloned());
                p.extend(segs.drain(1..));
                segs = p;
            }
            "super" => {
                let mut p = vec![caller_fn.crate_name.clone()];
                let up = file.module.len().saturating_sub(1);
                p.extend(file.module[..up].iter().cloned());
                p.extend(segs.drain(1..));
                segs = p;
            }
            _ => {}
        }
        let mut want = segs;
        want.push(name.to_string());
        let picked: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fn_paths[i].ends_with(&want) || suffix_of(&want, &self.fn_paths[i]))
            .collect();
        arity_pref(self.ws, picked, argc, 4)
    }
}

/// Whether `want` (possibly partially qualified, e.g. `[admin,
/// read_request]`) is a suffix of `full`.
fn suffix_of(want: &[String], full: &[String]) -> bool {
    want.len() <= full.len() && full[full.len() - want.len()..] == *want
}

fn arity_pref(ws: &Workspace, cands: Vec<usize>, argc: usize, cap: usize) -> Vec<usize> {
    let exact: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].arity == argc)
        .collect();
    let picked = if exact.is_empty() { cands } else { exact };
    if picked.len() > cap {
        Vec::new()
    } else {
        picked
    }
}

/// Index of the token matching `open` at `i` (same-pair counting; string
/// and char contents are already stripped by the lexer, so bracket
/// characters only appear as real punctuation).
fn matching(toks: &[Tok], i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].text == open {
            depth += 1;
        } else if toks[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len() - 1
}

/// Start index of the postfix receiver chain ending just before the
/// token at `dot` (exclusive): walks back over idents, `.`, `::`, and
/// balanced `()`/`[]` groups.
fn receiver_start(toks: &[Tok], dot: usize, floor: usize) -> usize {
    let mut k = dot;
    while k > floor {
        let prev = &toks[k - 1];
        match prev.text.as_str() {
            ")" | "]" => {
                // Walk back to the matching open.
                let close_ch = prev.text.as_str();
                let open_ch = if close_ch == ")" { "(" } else { "[" };
                let mut depth = 0usize;
                let mut j = k - 1;
                loop {
                    if toks[j].text == close_ch {
                        depth += 1;
                    } else if toks[j].text == open_ch {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == floor {
                        break;
                    }
                    j -= 1;
                }
                k = j;
            }
            "." | ":" => k -= 1,
            _ if prev.kind == TokKind::Ident && !is_keyword(&prev.text) => k -= 1,
            _ => break,
        }
    }
    k
}

/// Idents of the receiver chain `[a, b)` (e.g. `self.buf` → self, buf).
fn chain_idents(toks: &[Tok], a: usize, b: usize) -> Vec<&str> {
    toks[a..b]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        .map(|t| t.text.as_str())
        .collect()
}

/// Leading `a::b::` path segments before the call name at `i`.
fn path_before(toks: &[Tok], i: usize, floor: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut k = i;
    while k >= floor + 3
        && toks[k - 1].text == ":"
        && toks[k - 2].text == ":"
        && toks[k - 3].kind == TokKind::Ident
    {
        segs.push(toks[k - 3].text.clone());
        k -= 3;
    }
    segs.reverse();
    segs
}

/// Splits the argument tokens of a call group `(a..b)` (exclusive of
/// the parens) into per-argument ranges at top-level commas.
fn arg_ranges(toks: &[Tok], a: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = a;
    for (j, t) in toks.iter().enumerate().take(b).skip(a) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < b {
        out.push((start, b));
    }
    out
}

/// End of the statement starting at `i`: the `;` at depth 0, a `{` at
/// depth 0 when `stop_at_brace` (for `if let` / `while let` / `for`
/// heads), or the point where the enclosing block closes.
fn stmt_end(toks: &[Tok], i: usize, end: usize, stop_at_brace: bool) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            "{" => {
                if depth == 0 && stop_at_brace {
                    return j;
                }
                depth += 1;
            }
            ")" | "]" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Whether the expression `[a, b)` is tainted: mentions a live tainted
/// ident outside a clean span / mask, or calls an unconditional source.
#[allow(clippy::too_many_arguments)]
fn eval_expr(
    ctx: &Ctx,
    uncond: &BTreeSet<usize>,
    caller: usize,
    toks: &[Tok],
    a: usize,
    b: usize,
    tainted: &BTreeSet<String>,
    socket: bool,
) -> bool {
    // Clean spans: receiver-chain + validated/laundering call group.
    let mut clean: Vec<(usize, usize)> = Vec::new();
    let mut j = a;
    while j + 2 < b {
        if toks[j].text == "."
            && toks[j + 1].kind == TokKind::Ident
            && toks[j + 2].text == "("
        {
            let n = toks[j + 1].text.as_str();
            if CLEAN_CALLS.contains(&n)
                || n.starts_with("checked_")
                || n.starts_with("saturating_")
                || n.starts_with("wrapping_")
            {
                let close = matching(toks, j + 2, "(", ")");
                let rcv = receiver_start(toks, j, a);
                clean.push((rcv, (close + 1).min(b)));
                j = close + 1;
                continue;
            }
        }
        j += 1;
    }
    let in_clean = |k: usize| clean.iter().any(|&(x, y)| x <= k && k < y);

    let mut j = a;
    while j < b {
        if in_clean(j) {
            j += 1;
            continue;
        }
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            if tainted.contains(&t.text) && !is_keyword(&t.text) {
                // Masked uses are clean: `x & 0xff`, `x % n`.
                let masked = toks
                    .get(j + 1)
                    .map(|n| {
                        (n.text == "&"
                            && toks.get(j + 2).map(|m| m.kind == TokKind::Literal).unwrap_or(false))
                            || n.text == "%"
                    })
                    .unwrap_or(false);
                if !masked {
                    return true;
                }
            }
            if toks.get(j + 1).map(|n| n.text == "(").unwrap_or(false) && !is_keyword(&t.text) {
                let method = j > 0 && toks[j - 1].text == ".";
                if method && socket && READ_RETURNS.contains(&t.text.as_str()) {
                    return true;
                }
                let close = matching(toks, j + 1, "(", ")");
                let argc = arg_ranges(toks, j + 2, close).len();
                let path = if method {
                    Vec::new()
                } else {
                    path_before(toks, j, a)
                };
                let cands = ctx.resolve(caller, &path, &t.text, argc, method);
                // A declared sanitizer returns clean no matter what goes
                // in: skip its argument group entirely (`cap(len)`).
                if !cands.is_empty() && cands.iter().all(|&c| ctx.ws.fns[c].is_sanitizer) {
                    j = close + 1;
                    continue;
                }
                if cands.iter().any(|c| uncond.contains(c)) {
                    return true;
                }
            }
        }
        j += 1;
    }
    false
}

/// Runs the intra-function pass for `fi` with entry taint `seeds`.
#[allow(clippy::too_many_lines)]
fn eval_fn(
    ctx: &Ctx,
    uncond: &BTreeSet<usize>,
    fi: usize,
    seeds: Option<&BTreeSet<String>>,
    final_mode: bool,
) -> EvalOut {
    let mut out = EvalOut::default();
    let f = &ctx.ws.fns[fi];
    let Some((start, end)) = f.body else {
        return out;
    };
    let file = &ctx.ws.files[f.file];
    let toks = &file.scanned.toks;
    let socket = ctx.socket_file[f.file];
    // Nested fn bodies in range are their own functions; skip them.
    let child_ranges: Vec<(usize, usize)> = ctx
        .ws
        .fns
        .iter()
        .filter(|c| {
            c.file == f.file
                && c.body
                    .map(|(a, b)| a > start && b <= end)
                    .unwrap_or(false)
        })
        .filter_map(|c| c.body)
        .collect();

    let mut tainted: BTreeSet<String> = seeds.cloned().unwrap_or_default();
    let mut fixed_len: BTreeSet<String> = BTreeSet::new();
    let mut any_taint = !tainted.is_empty();
    if f.source_reason.is_some() {
        any_taint = true;
        out.root_why = Some(format!(
            "declared taint source: {}",
            f.source_reason.as_deref().unwrap_or("")
        ));
    }

    let ev = |a: usize, b: usize, tainted: &BTreeSet<String>| {
        eval_expr(ctx, uncond, fi, toks, a, b, tainted, socket)
    };
    let sink = |line: u32, col: u32, message: String, out: &mut EvalOut| {
        out.findings.push(TaintFinding {
            file: f.file,
            line,
            col,
            message,
            trace: Vec::new(),
        });
    };

    let mut i = start;
    while i < end {
        if let Some(&(_, ce)) = child_ranges.iter().find(|&&(ca, ce)| ca <= i && i < ce) {
            i = ce;
            continue;
        }
        let t = &toks[i];

        // ---- bindings -------------------------------------------------
        if t.kind == TokKind::Ident && (t.text == "let" || t.text == "for") {
            let is_for = t.text == "for";
            let head_kw = if is_for { "in" } else { "=" };
            // `if let` / `while let` heads end at `{`, not `;`.
            let cond_ctx = !is_for
                && i > start
                && toks
                    .get(i - 1)
                    .map(|p| p.text == "if" || p.text == "while")
                    .unwrap_or(false);
            let mut names: Vec<String> = Vec::new();
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut after_colon = false;
            let mut eq_pos: Option<usize> = None;
            while j < end {
                let tj = &toks[j];
                match tj.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ":" if depth == 0 => after_colon = true,
                    ";" if depth == 0 => break,
                    s if depth == 0 && !is_for && s == head_kw => {
                        // `=` but not `==` (can't appear in a pattern).
                        eq_pos = Some(j);
                        break;
                    }
                    s if depth == 0
                        && is_for
                        && s == head_kw
                        && tj.kind == TokKind::Ident =>
                    {
                        eq_pos = Some(j);
                        break;
                    }
                    _ => {
                        if tj.kind == TokKind::Ident && !after_colon && !is_keyword(&tj.text) {
                            names.push(tj.text.clone());
                        }
                    }
                }
                j += 1;
            }
            if let Some(eq) = eq_pos {
                let se = stmt_end(toks, eq + 1, end, is_for || cond_ctx);
                let texpr = ev(eq + 1, se, &tainted);
                let fixed = toks.get(eq + 1).map(|t| t.text == "[").unwrap_or(false) && {
                    let close = matching(toks, eq + 1, "[", "]");
                    toks[eq + 1..close].iter().any(|t| t.text == ";")
                };
                for n in &names {
                    if texpr {
                        tainted.insert(n.clone());
                    } else {
                        tainted.remove(n);
                    }
                    if fixed {
                        fixed_len.insert(n.clone());
                    } else {
                        fixed_len.remove(n);
                    }
                }
                if texpr {
                    any_taint = true;
                }
                i = eq + 1;
                continue;
            }
            // Un-initialized `let x;` — the binding is clean.
            for n in &names {
                tainted.remove(n);
            }
            i = j + 1;
            continue;
        }

        // ---- intrinsic reads ------------------------------------------
        if t.text == "."
            && toks
                .get(i + 1)
                .map(|n| n.kind == TokKind::Ident && READ_FILLS.contains(&n.text.as_str()))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.text == "(").unwrap_or(false)
        {
            if socket && !f.is_test {
                let close = matching(toks, i + 2, "(", ")");
                for tk in toks.iter().take(close).skip(i + 3) {
                    if tk.kind == TokKind::Ident && !is_keyword(&tk.text) {
                        tainted.insert(tk.text.clone());
                    }
                }
                any_taint = true;
                if out.root_why.is_none() {
                    out.root_why = Some(format!(
                        "fills a buffer via .{}() on a socket-backed reader",
                        toks[i + 1].text
                    ));
                }
            }
            i += 2;
            continue;
        }
        if t.text == "."
            && toks
                .get(i + 1)
                .map(|n| READ_RETURNS.contains(&n.text.as_str()))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.text == "(").unwrap_or(false)
            && socket
            && !f.is_test
        {
            any_taint = true;
            if out.root_why.is_none() {
                out.root_why = Some(format!(
                    "reads peer bytes via .{}() on a socket-backed reader",
                    toks[i + 1].text
                ));
            }
        }

        // ---- kills ----------------------------------------------------
        if t.kind == TokKind::Ident && tainted.contains(&t.text) {
            let next = toks.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
            let next2 = toks.get(i + 2).map(|n| n.text.as_str()).unwrap_or("");
            let prev = i
                .checked_sub(1)
                .and_then(|k| toks.get(k))
                .map(|n| n.text.as_str())
                .unwrap_or("");
            let prev2 = i
                .checked_sub(2)
                .and_then(|k| toks.get(k))
                .map(|n| n.text.as_str())
                .unwrap_or("");
            let compared = matches!(next, "<" | ">")
                || (next == "=" && next2 == "=")
                || (next == "!" && next2 == "=")
                || matches!(prev, "<" | ">")
                || (prev == "=" && matches!(prev2, "=" | "!" | "<" | ">"));
            let inspected = next == "."
                && matches!(next2, "len" | "is_empty")
                && toks.get(i + 3).map(|n| n.text == "(").unwrap_or(false);
            if compared || inspected {
                tainted.remove(&t.text);
            }
        }

        // ---- sinks ----------------------------------------------------
        if final_mode && any_taint {
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false)
            {
                sink(
                    t.line,
                    t.col,
                    format!(
                        "{}! reachable from peer input in {} — peers must not \
                         be able to trigger a panic",
                        t.text,
                        f.display_path()
                    ),
                    &mut out,
                );
            }
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
            {
                sink(
                    t.line,
                    t.col,
                    format!(
                        ".{}() reachable from peer input in {} — convert to the \
                         typed error path",
                        t.text,
                        f.display_path()
                    ),
                    &mut out,
                );
            }
        }
        if final_mode && t.text == "[" && crate::rules::is_index_expression(toks, i) {
            let close = matching(toks, i, "[", "]");
            let idx_tainted = ev(i + 1, close, &tainted);
            let rcv_start = receiver_start(toks, i, start);
            let chain = chain_idents(toks, rcv_start, i);
            let rcv_tainted = chain
                .iter()
                .any(|c| tainted.contains(*c) && !fixed_len.contains(*c));
            if idx_tainted {
                sink(
                    t.line,
                    t.col,
                    format!(
                        "slice index computed from peer input in {} — validate \
                         or use .get()",
                        f.display_path()
                    ),
                    &mut out,
                );
            } else if rcv_tainted {
                sink(
                    t.line,
                    t.col,
                    format!(
                        "indexing into peer-supplied buffer `{}` in {} without \
                         a length check — use .get() or check .len() first",
                        chain.last().copied().unwrap_or("?"),
                        f.display_path()
                    ),
                    &mut out,
                );
            }
        }
        if final_mode {
            // vec![_; n] with tainted n.
            if t.kind == TokKind::Ident
                && t.text == "vec"
                && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false)
                && toks.get(i + 2).map(|n| n.text == "[").unwrap_or(false)
            {
                let close = matching(toks, i + 2, "[", "]");
                let mut depth = 0i32;
                for (k, tk) in toks.iter().enumerate().take(close).skip(i + 3) {
                    match tk.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => {
                            if ev(k + 1, close, &tainted) {
                                sink(
                                    t.line,
                                    t.col,
                                    format!(
                                        "vec! allocation sized by peer-controlled \
                                         length in {} — bound it against a \
                                         configured maximum first",
                                        f.display_path()
                                    ),
                                    &mut out,
                                );
                            }
                            break;
                        }
                        _ => {}
                    }
                }
            }
            // Vec::with_capacity(n) / .reserve(n) / .resize(n, _) / .set_len(n)
            let alloc_call = if t.kind == TokKind::Ident && t.text == "with_capacity" {
                true
            } else {
                t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "reserve" | "reserve_exact" | "resize" | "set_len")
                    && i > 0
                    && toks[i - 1].text == "."
            };
            if alloc_call && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false) {
                let close = matching(toks, i + 1, "(", ")");
                if let Some(&(a0, b0)) = arg_ranges(toks, i + 2, close).first() {
                    if ev(a0, b0, &tainted) {
                        sink(
                            t.line,
                            t.col,
                            format!(
                                "{} sized by peer-controlled length in {} — bound \
                                 it against a configured maximum first",
                                t.text,
                                f.display_path()
                            ),
                            &mut out,
                        );
                    }
                }
            }
        }

        // ---- generic assignment --------------------------------------
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && toks.get(i + 1).map(|n| n.text == "=").unwrap_or(false)
            && toks.get(i + 2).map(|n| n.text != "=" && n.text != ">").unwrap_or(false)
        {
            let prev_ok = i == 0
                || !matches!(toks[i - 1].text.as_str(), "=" | "<" | ">" | "!" | "." | ":");
            if prev_ok {
                let se = stmt_end(toks, i + 2, end, false);
                let texpr = ev(i + 2, se, &tainted);
                if texpr {
                    tainted.insert(t.text.clone());
                    any_taint = true;
                } else {
                    tainted.remove(&t.text);
                }
            }
        }

        // ---- call sites: seeding + edges ------------------------------
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
            && !READ_FILLS.contains(&t.text.as_str())
            && !READ_RETURNS.contains(&t.text.as_str())
        {
            let method = i > 0 && toks[i - 1].text == ".";
            let close = matching(toks, i + 1, "(", ")");
            let args = arg_ranges(toks, i + 2, close);
            let path = if method {
                Vec::new()
            } else {
                path_before(toks, i, start)
            };
            let cands = ctx.resolve(fi, &path, &t.text, args.len(), method);
            if !cands.is_empty() {
                let tainted_pos: Vec<usize> = args
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a0, b0))| ev(a0, b0, &tainted))
                    .map(|(k, _)| k)
                    .collect();
                if !tainted_pos.is_empty() {
                    any_taint = true;
                    for &c in &cands {
                        let mut names: BTreeSet<String> = BTreeSet::new();
                        for &p in &tainted_pos {
                            if let Some(ns) = ctx.ws.fns[c].param_names.get(p) {
                                names.extend(ns.iter().cloned());
                            }
                        }
                        if !names.is_empty() {
                            out.seeded.push((c, t.line, names));
                        }
                    }
                }
            }
        }

        i += 1;
    }

    out.any_taint = any_taint || !tainted.is_empty();
    out
}

/// Renders one trace step.
fn step(ws: &Workspace, fi: usize, note: &str) -> String {
    let f = &ws.fns[fi];
    let file = &ws.files[f.file];
    if note.is_empty() {
        format!("{} ({}:{})", f.display_path(), file.path, f.sig_line)
    } else {
        format!(
            "{} ({}:{}) — {}",
            f.display_path(),
            file.path,
            f.sig_line,
            note
        )
    }
}

/// Runs the full interprocedural analysis over an indexed workspace.
pub fn analyze(ws: &Workspace) -> Analysis {
    let ctx = Ctx::new(ws);
    let body_fns: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.body.is_some() && !f.is_test)
        .map(|(i, _)| i)
        .collect();

    // Phase 1: unconditional-source summaries to a fixpoint. A fn is an
    // unconditional source if, with no tainted parameters, its body
    // still produces taint (an intrinsic read, a declared source, or a
    // call to another unconditional source) and it returns a value.
    let mut uncond: BTreeSet<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.source_reason.is_some() && !f.is_test)
        .map(|(i, _)| i)
        .collect();
    loop {
        let mut changed = false;
        for &fi in &body_fns {
            if uncond.contains(&fi) || !ws.fns[fi].has_return {
                continue;
            }
            let out = eval_fn(&ctx, &uncond, fi, None, false);
            if out.any_taint {
                uncond.insert(fi);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: parameter-taint propagation over the call graph.
    let mut seeds: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut taint_from: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut work: VecDeque<usize> = body_fns.iter().copied().collect();
    let mut iterations = 0usize;
    while let Some(fi) = work.pop_front() {
        iterations += 1;
        if iterations > body_fns.len() * 64 {
            break; // safety valve; seeds are monotone so this is unreachable
        }
        let out = eval_fn(&ctx, &uncond, fi, seeds.get(&fi), false);
        for (callee, line, names) in out.seeded {
            if ws.fns[callee].is_test || ws.fns[callee].body.is_none() {
                continue;
            }
            let entry = seeds.entry(callee).or_default();
            let before = entry.len();
            entry.extend(names);
            if entry.len() > before {
                taint_from.entry(callee).or_insert((fi, line));
                work.push_back(callee);
            }
        }
    }

    // Phase 3: final pass — active set, roots, sinks, call edges.
    let mut analysis = Analysis {
        roots: Vec::new(),
        active: BTreeSet::new(),
        scope_r1: BTreeSet::new(),
        scope_r2_files: BTreeSet::new(),
        scope_r4: BTreeSet::new(),
        findings: Vec::new(),
        taint_from: taint_from.clone(),
    };
    let mut emitters: BTreeSet<usize> = BTreeSet::new();
    let mut pending: Vec<(usize, TaintFinding)> = Vec::new();
    for &fi in &body_fns {
        let out = eval_fn(&ctx, &uncond, fi, seeds.get(&fi), true);
        if out.any_taint {
            analysis.active.insert(fi);
        }
        if let Some(why) = &out.root_why {
            analysis.roots.push((fi, why.clone()));
        }
        // Byte-emitter detection for the R2 scope.
        if let Some((a, b)) = ws.fns[fi].body {
            let toks = &ws.files[ws.fns[fi].file].scanned.toks;
            if toks[a..b].iter().enumerate().any(|(k, t)| {
                t.kind == TokKind::Ident
                    && EMITTERS.contains(&t.text.as_str())
                    && toks
                        .get(a + k + 1)
                        .map(|n| n.text == "(")
                        .unwrap_or(false)
            }) {
                emitters.insert(fi);
            }
        }
        for fdg in out.findings {
            pending.push((fi, fdg));
        }
    }
    // Attach flow traces now that the root list is complete.
    for (fi, mut fdg) in pending {
        fdg.trace = build_trace(ws, &taint_from, &analysis.roots, fi);
        analysis.findings.push(fdg);
    }

    analysis.scope_r1 = analysis.active.clone();
    analysis.scope_r4 = analysis
        .active
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].crate_name != "s2_bdd")
        .collect();
    for &fi in analysis.active.iter().chain(emitters.iter()) {
        analysis.scope_r2_files.insert(ws.fns[fi].file);
    }
    analysis
}

/// Builds the root→`fi` call-chain trace.
fn build_trace(
    ws: &Workspace,
    taint_from: &BTreeMap<usize, (usize, u32)>,
    roots: &[(usize, String)],
    fi: usize,
) -> Vec<String> {
    let mut chain: Vec<usize> = vec![fi];
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    seen.insert(fi);
    let mut cur = fi;
    while let Some(&(caller, _)) = taint_from.get(&cur) {
        if !seen.insert(caller) {
            break;
        }
        chain.push(caller);
        cur = caller;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| {
            let note = roots
                .iter()
                .find(|(r, _)| *r == f)
                .map(|(_, w)| w.as_str())
                .unwrap_or("");
            step(ws, f, note)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;

    fn ws_files(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
        };
        for (krate, path, src) in files {
            index::index_file(&mut ws, krate.to_string(), path.to_string(), src);
        }
        ws
    }

    const READER: &str = "\
use std::net::TcpStream;
use std::io::Read;
pub fn read_frame(s: &mut TcpStream) -> Vec<u8> {
    let mut head = [0u8; 4];
    s.read_exact(&mut head).ok();
    let len = u32::from_be_bytes(head) as usize;
    let mut payload = vec![0u8; 16];
    s.read_exact(&mut payload).ok();
    let _ = len;
    payload
}
";

    #[test]
    fn socket_reader_becomes_root_and_unconditional_source() {
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", READER)]);
        let a = analyze(&ws);
        assert_eq!(a.roots.len(), 1, "{:?}", a.roots);
        assert!(a.active.contains(&0));
    }

    #[test]
    fn taint_flows_through_a_cross_module_helper_to_a_sink() {
        let helper = "\
pub fn pick(data: &[u8], idx: usize) -> u8 {
    data[idx]
}
";
        let main = "\
use std::net::TcpStream;
use std::io::Read;
mod helper;
pub fn serve(s: &mut TcpStream) -> u8 {
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).ok();
    let idx = buf[0] as usize;
    crate::helper::pick(&buf, idx)
}
";
        let ws = ws_files(&[
            ("t", "crates/t/src/lib.rs", main),
            ("t", "crates/t/src/helper.rs", helper),
        ]);
        let a = analyze(&ws);
        // pick's `idx` param is seeded; data[idx] is a tainted-index sink.
        let pick = ws.fns.iter().position(|f| f.name == "pick").unwrap();
        assert!(a.active.contains(&pick), "active: {:?}", a.active);
        assert!(
            a.findings
                .iter()
                .any(|f| f.message.contains("slice index computed from peer input")
                    && f.message.contains("pick")),
            "{:?}",
            a.findings
        );
        // The flow trace names both functions.
        let fdg = a
            .findings
            .iter()
            .find(|f| f.message.contains("pick"))
            .unwrap();
        assert!(fdg.trace.iter().any(|s| s.contains("serve")), "{:?}", fdg.trace);
    }

    #[test]
    fn validation_kills_the_flow() {
        let src = "\
use std::net::TcpStream;
use std::io::Read;
pub fn serve(s: &mut TcpStream, table: &[u8]) -> u8 {
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).ok();
    let idx = buf[0] as usize;
    if idx >= table.len() {
        return 0;
    }
    table[idx]
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(
            !a.findings.iter().any(|f| f.message.contains("slice index")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn checked_arithmetic_and_min_launder() {
        let src = "\
use std::net::TcpStream;
use std::io::Read;
pub fn serve(s: &mut TcpStream) -> Vec<u8> {
    let mut head = [0u8; 4];
    s.read_exact(&mut head).ok();
    let len = u32::from_be_bytes(head) as usize;
    let capped = len.min(1024);
    vec![0u8; capped]
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(
            !a.findings.iter().any(|f| f.message.contains("allocation")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn unbounded_allocation_from_peer_length_is_flagged() {
        let src = "\
use std::net::TcpStream;
use std::io::Read;
pub fn serve(s: &mut TcpStream) -> Vec<u8> {
    let mut head = [0u8; 4];
    s.read_exact(&mut head).ok();
    let len = u32::from_be_bytes(head) as usize;
    vec![0u8; len]
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(
            a.findings
                .iter()
                .any(|f| f.message.contains("allocation sized by peer-controlled")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn unwrap_in_taint_reached_fn_is_flagged() {
        let src = "\
use std::net::TcpStream;
use std::io::Read;
pub fn serve(s: &mut TcpStream) -> u8 {
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).ok();
    decode(&buf)
}
fn decode(b: &[u8]) -> u8 {
    b.first().copied().unwrap()
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(
            a.findings
                .iter()
                .any(|f| f.message.contains(".unwrap()") && f.message.contains("decode")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn source_pragma_marks_a_queue_pop_as_root() {
        let src = "\
pub struct Inbox;
impl Inbox {
    // s2-lint: source(peer-input): frames in this queue were read off peer sockets
    pub fn pop(&self) -> Option<Vec<u8>> { None }
}
pub fn drain(inbox: &Inbox) {
    while let Some(frame) = inbox.pop() {
        let _ = frame[0];
    }
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(!a.roots.is_empty(), "pop should be a declared root");
        assert!(
            a.findings
                .iter()
                .any(|f| f.message.contains("peer-supplied buffer `frame`")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn sanitizer_pragma_launders_a_bounded_length() {
        let src = "\
use std::net::TcpStream;
use std::io::Read;
// s2-lint: sanitizer(alloc-bound): result is min-capped at 64 KiB
fn cap(n: usize) -> usize { if n > 65536 { 65536 } else { n } }
pub fn serve(s: &mut TcpStream) -> Vec<u8> {
    let mut head = [0u8; 4];
    s.read_exact(&mut head).ok();
    let len = u32::from_be_bytes(head) as usize;
    Vec::with_capacity(cap(len))
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(
            !a.findings.iter().any(|f| f.message.contains("with_capacity")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn clean_crate_stays_clean() {
        let src = "\
pub fn add(a: u32, b: u32) -> u32 { a + b }
pub fn lookup(t: &[u8], i: usize) -> u8 { t[i % t.len()] }
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert!(a.active.is_empty());
    }

    #[test]
    fn emitter_files_enter_the_r2_scope() {
        let src = "\
pub fn encode(v: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_be_bytes());
}
";
        let ws = ws_files(&[("t", "crates/t/src/lib.rs", src)]);
        let a = analyze(&ws);
        assert!(a.scope_r2_files.contains(&0), "encoder file should be R2-scoped");
    }
}
