//! Workspace item/function index for s2-lint v2.
//!
//! Walks every crate's `src/` tree, lexes each file with
//! [`crate::lexer`], and extracts a lightweight structural index: one
//! [`FnInfo`] per `fn` item (module-path-aware, impl/trait-type-aware,
//! nested fns attributed to themselves, closures to their enclosing
//! fn), plus per-file `use` maps for call resolution. This is the
//! substrate the call graph and taint pass in [`crate::taint`] run on.
//!
//! The index is token-level, not an AST: it understands exactly enough
//! Rust shape (mod/impl/trait/fn nesting by brace matching, generics
//! fences, where clauses) to place every function and count its
//! parameters. Macro-generated functions are invisible; the workspace
//! deliberately avoids fn-generating macros on peer-input paths.

use crate::lexer::{self, Scanned, TokKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One indexed source file.
pub struct FileEntry {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Crate the file belongs to (package name, `-` normalized to `_`).
    pub crate_name: String,
    /// Module path within the crate derived from the file path
    /// (`src/lib.rs` → empty, `src/foo.rs` → `[foo]`).
    pub module: Vec<String>,
    /// Lexed contents.
    pub scanned: Scanned,
    /// `use` imports: simple name → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
}

/// One `fn` item anywhere in the workspace.
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (last path segment).
    pub impl_type: Option<String>,
    /// Module path: file module plus inline `mod` blocks.
    pub module: Vec<String>,
    /// Crate name (underscored).
    pub crate_name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Last line of the body (or sig line for bodyless decls).
    pub end_line: u32,
    /// Token index range of the body *inside* the braces, within the
    /// file's token stream; `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Number of explicit parameters (excluding any `self`).
    pub arity: usize,
    /// Binding names of each explicit parameter, in order (a pattern
    /// param like `(a, b): (u32, u32)` contributes several names).
    pub param_names: Vec<Vec<String>>,
    /// Whether the fn takes `self`.
    pub has_self: bool,
    /// Whether the fn declares a return type (`-> ...`).
    pub has_return: bool,
    /// Whether the fn sits inside a `#[cfg(test)]` span.
    pub is_test: bool,
    /// Reason string of an attached `// s2-lint: source(...)` pragma.
    pub source_reason: Option<String>,
    /// Whether a justified `// s2-lint: sanitizer(...)` pragma marks
    /// this fn's return value as clean regardless of argument taint.
    pub is_sanitizer: bool,
}

impl FnInfo {
    /// `crate::module::Type::name`-style display path.
    pub fn display_path(&self) -> String {
        let mut s = self.crate_name.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(t) = &self.impl_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// The whole-workspace index.
pub struct Workspace {
    /// All indexed files, sorted by path.
    pub files: Vec<FileEntry>,
    /// All functions; indices are stable ids used by the call graph.
    pub fns: Vec<FnInfo>,
}

impl Workspace {
    /// Functions whose body token range encloses `tok_idx` in `file`,
    /// innermost last.
    pub fn enclosing_fns(&self, file: usize, tok_idx: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file == file
                    && f.body
                        .map(|(a, b)| a <= tok_idx && tok_idx < b)
                        .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        v.sort_by_key(|&i| {
            let (a, b) = self.fns[i].body.unwrap_or((0, usize::MAX));
            b - a
        });
        v.reverse(); // widest first, innermost last
        v
    }

    /// The innermost function containing `tok_idx` in `file`.
    pub fn innermost_fn(&self, file: usize, tok_idx: usize) -> Option<usize> {
        self.enclosing_fns(file, tok_idx).pop()
    }
}

/// Builds the index by walking `root`'s crates.
///
/// Indexes `crates/*/src/**/*.rs` plus the root package's `src/` if
/// present. Returns files sorted by path for determinism.
pub fn build(root: &Path) -> Result<Workspace, String> {
    let mut file_paths: Vec<(String, PathBuf)> = Vec::new(); // (crate, path)

    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = crate_name(&dir);
            collect_rs(&src, &name, &mut file_paths)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        let name = crate_name(root);
        collect_rs(&root_src, &name, &mut file_paths)?;
    }

    let mut ws = Workspace {
        files: Vec::new(),
        fns: Vec::new(),
    };
    for (crate_name, path) in file_paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        index_file(&mut ws, crate_name, rel, &text);
    }
    // Files were collected in sorted order (crates dir sorted,
    // collect_rs recurses sorted, and "crates/" < "src/"), so file
    // indices are already deterministic; re-sorting here would break
    // FnInfo.file back-references.
    Ok(ws)
}

/// Indexes one in-memory file (exposed for fixture corpora and tests).
pub fn index_file(ws: &mut Workspace, crate_name: String, rel_path: String, text: &str) {
    let scanned = lexer::scan(text);
    let module = module_path_of(&rel_path);
    let uses = parse_uses(&scanned);
    let file_idx = ws.files.len();
    ws.files.push(FileEntry {
        path: rel_path,
        crate_name: crate_name.clone(),
        module: module.clone(),
        scanned,
        uses,
    });
    extract_fns(ws, file_idx);
}

/// Reads the package name from `dir/Cargo.toml`, falling back to the
/// directory name; `-` is normalized to `_` to match path tokens.
fn crate_name(dir: &Path) -> String {
    let manifest = dir.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
                continue;
            }
            if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(rest) = rest.strip_prefix('=') {
                        let v = rest.trim().trim_matches('"');
                        return v.replace('-', "_");
                    }
                }
            }
        }
    }
    dir.file_name()
        .map(|n| n.to_string_lossy().replace('-', "_"))
        .unwrap_or_else(|| "unknown".into())
}

/// Module path from a `src/...` relative path.
fn module_path_of(rel: &str) -> Vec<String> {
    let after_src = match rel.find("src/") {
        Some(i) => &rel[i + 4..],
        None => rel,
    };
    let mut parts: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .map(|s| s.to_string())
        .collect();
    match parts.last().map(|s| s.as_str()) {
        Some("lib") | Some("main") => {
            parts.pop();
        }
        Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, crate_name, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push((crate_name.to_string(), p));
        }
    }
    Ok(())
}

/// Parses `use` declarations into simple-name → full-path entries.
/// Groups (`use a::{b, c as d}`) are expanded; globs are ignored (the
/// resolver falls back to crate-unique name matching).
fn parse_uses(s: &Scanned) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    let toks = &s.toks;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            // Collect the token texts until ';'.
            let mut j = i + 1;
            let mut texts: Vec<&str> = Vec::new();
            while j < toks.len() && toks[j].text != ";" {
                texts.push(toks[j].text.as_str());
                j += 1;
            }
            expand_use(&texts, &mut Vec::new(), &mut 0, &mut map);
            i = j;
        }
        i += 1;
    }
    map
}

/// Recursive-descent expansion of a use tree token list.
fn expand_use<'a>(
    texts: &[&'a str],
    prefix: &mut Vec<&'a str>,
    pos: &mut usize,
    map: &mut BTreeMap<String, Vec<String>>,
) {
    let depth_at_entry = prefix.len();
    let mut last: Option<&str> = None;
    while *pos < texts.len() {
        let t = texts[*pos];
        *pos += 1;
        match t {
            ":" => {}
            "{" => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                expand_use(texts, prefix, pos, map);
            }
            "}" => {
                emit_use(prefix, last.take(), map);
                prefix.truncate(depth_at_entry);
                return;
            }
            "," => {
                emit_use(prefix, last.take(), map);
                prefix.truncate(depth_at_entry);
            }
            // `x as y`: record under alias y with path ..::x. (A
            // trailing `as` with no alias is malformed; let it fall
            // through to the segment arm.)
            "as" if *pos < texts.len() => {
                let alias = texts[*pos];
                *pos += 1;
                if let Some(orig) = last.take() {
                    let mut full: Vec<String> =
                        prefix.iter().map(|s| s.to_string()).collect();
                    full.push(orig.to_string());
                    map.insert(alias.to_string(), full);
                }
            }
            "*" => {
                last = None; // glob: skipped
            }
            seg if seg.chars().next().map(|c| c.is_alphanumeric() || c == '_').unwrap_or(false) => {
                if let Some(prev) = last.take() {
                    prefix.push(prev);
                }
                last = Some(seg);
            }
            _ => {}
        }
    }
    emit_use(prefix, last.take(), map);
    prefix.truncate(depth_at_entry);
}

fn emit_use(prefix: &[&str], last: Option<&str>, map: &mut BTreeMap<String, Vec<String>>) {
    if let Some(name) = last {
        let mut full: Vec<String> = prefix.iter().map(|s| s.to_string()).collect();
        full.push(name.to_string());
        if name == "self" {
            // `use a::b::{self}` imports b.
            full.pop();
            if let Some(seg) = full.last().cloned() {
                map.insert(seg, full);
            }
            return;
        }
        map.insert(name.to_string(), full);
    }
}

/// Scope kinds tracked during fn extraction.
enum Scope {
    Mod(String),
    Type(String),
    Fn(usize),
    Other,
}

/// Extracts all `fn` items from `ws.files[file_idx]` into `ws.fns`.
fn extract_fns(ws: &mut Workspace, file_idx: usize) {
    let (crate_name, base_module) = {
        let f = &ws.files[file_idx];
        (f.crate_name.clone(), f.module.clone())
    };
    let n_toks = ws.files[file_idx].scanned.toks.len();
    // (scope, brace_depth_at_open)
    let mut stack: Vec<(Scope, u32)> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = 0;
    // Pending scope for the next '{' (set by mod/impl/trait/fn headers).
    let mut pending: Option<Scope> = None;

    while i < n_toks {
        let t = |k: usize| -> &lexer::Tok { &ws.files[file_idx].scanned.toks[k] };
        let text = t(i).text.clone();
        match text.as_str() {
            "{" => {
                depth += 1;
                stack.push((pending.take().unwrap_or(Scope::Other), depth));
                i += 1;
            }
            "}" => {
                if let Some((scope, d)) = stack.pop() {
                    debug_assert_eq!(d, depth);
                    if let Scope::Fn(fn_idx) = scope {
                        ws.fns[fn_idx].body = ws.fns[fn_idx].body.map(|(a, _)| (a, i));
                        ws.fns[fn_idx].end_line = t(i).line;
                    }
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            "mod" if t(i).kind == TokKind::Ident => {
                if i + 1 < n_toks && t(i + 1).kind == TokKind::Ident {
                    let name = t(i + 1).text.clone();
                    if i + 2 < n_toks && t(i + 2).text == "{" {
                        pending = Some(Scope::Mod(name));
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" | "trait" if t(i).kind == TokKind::Ident => {
                // Scan to the body '{' (or ';'), picking out the type
                // name: for `impl Trait for Type` the segment after
                // `for`; otherwise the last angle-depth-0 ident before
                // `where`/`{`.
                let mut j = i + 1;
                let mut angle: i32 = 0;
                let mut after_for = false;
                let mut name: Option<String> = None;
                while j < n_toks {
                    let tj = t(j);
                    match tj.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" if angle <= 0 => break,
                        ";" if angle <= 0 => break,
                        "where" if angle <= 0 => {
                            // Type name is settled; skip to body.
                            while j < n_toks && t(j).text != "{" && t(j).text != ";" {
                                j += 1;
                            }
                            break;
                        }
                        "for" if angle <= 0 => {
                            after_for = true;
                            name = None;
                        }
                        _ if tj.kind == TokKind::Ident && angle <= 0 => {
                            let kw = matches!(
                                tj.text.as_str(),
                                "dyn" | "mut" | "const" | "unsafe" | "pub" | "crate"
                            );
                            if !kw {
                                let _ = after_for;
                                name = Some(tj.text.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < n_toks && t(j).text == "{" {
                    pending = Some(match name {
                        Some(n) => Scope::Type(n),
                        None => Scope::Other,
                    });
                    i = j;
                } else {
                    i = j + 1;
                }
            }
            "fn" if t(i).kind == TokKind::Ident => {
                // `fn name <generics>? ( params ) (-> ret)? where*? { body }`
                let sig_line = t(i).line;
                if i + 1 >= n_toks || t(i + 1).kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let name = t(i + 1).text.clone();
                let mut j = i + 2;
                // Optional generics fence.
                if j < n_toks && t(j).text == "<" {
                    let mut angle = 0i32;
                    while j < n_toks {
                        match t(j).text.as_str() {
                            "<" => angle += 1,
                            ">" => {
                                angle -= 1;
                                if angle == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if j >= n_toks || t(j).text != "(" {
                    i += 1;
                    continue;
                }
                // Parameter list: split top-level commas into segments,
                // collecting each segment's binding names (idents before
                // the `:`) and detecting a `self` receiver.
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut has_self = false;
                let mut segments: Vec<Vec<String>> = Vec::new();
                let mut cur_names: Vec<String> = Vec::new();
                let mut cur_any = false;
                let mut cur_is_self = false;
                let mut seen_colon = false;
                while j < n_toks {
                    let tj = t(j);
                    match tj.text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => {
                            paren -= 1;
                            if paren == 0 {
                                j += 1;
                                break;
                            }
                        }
                        "<" => angle += 1,
                        ">" => angle = (angle - 1).max(0),
                        "," if paren == 1 && angle == 0 => {
                            if cur_is_self {
                                has_self = true;
                            } else if cur_any {
                                segments.push(std::mem::take(&mut cur_names));
                            }
                            cur_names.clear();
                            cur_any = false;
                            cur_is_self = false;
                            seen_colon = false;
                        }
                        ":" if paren == 1 && angle == 0 => seen_colon = true,
                        _ => {
                            if paren >= 1 {
                                cur_any = true;
                                if tj.kind == TokKind::Ident && !seen_colon {
                                    match tj.text.as_str() {
                                        "self" => cur_is_self = true,
                                        "mut" | "ref" => {}
                                        _ => cur_names.push(tj.text.clone()),
                                    }
                                }
                            }
                        }
                    }
                    j += 1;
                }
                if cur_any {
                    if cur_is_self {
                        has_self = true;
                    } else {
                        segments.push(cur_names);
                    }
                }
                let arity = segments.len();
                let param_names = segments;
                // Skip return type / where clause to '{' or ';'.
                let mut brace_j = None;
                let mut has_return = false;
                let mut angle2 = 0i32;
                while j < n_toks {
                    match t(j).text.as_str() {
                        "-" if t(j).kind == TokKind::Punct
                            && j + 1 < n_toks
                            && t(j + 1).text == ">" =>
                        {
                            has_return = true;
                        }
                        "<" => angle2 += 1,
                        ">" => angle2 = (angle2 - 1).max(0),
                        "{" if angle2 == 0 => {
                            brace_j = Some(j);
                            break;
                        }
                        ";" if angle2 == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let impl_type = stack.iter().rev().find_map(|(s, _)| match s {
                    Scope::Type(n) => Some(n.clone()),
                    _ => None,
                });
                let module: Vec<String> = base_module
                    .iter()
                    .cloned()
                    .chain(stack.iter().filter_map(|(s, _)| match s {
                        Scope::Mod(n) => Some(n.clone()),
                        _ => None,
                    }))
                    .collect();
                let is_test = ws.files[file_idx].scanned.in_test_code(sig_line);
                let source_reason = ws.files[file_idx]
                    .scanned
                    .source_for(sig_line)
                    .filter(|p| !p.reason.is_empty())
                    .map(|p| p.reason.clone());
                let is_sanitizer = ws.files[file_idx]
                    .scanned
                    .sanitizer_for(sig_line)
                    .is_some_and(|p| !p.reason.is_empty());
                let fn_idx = ws.fns.len();
                ws.fns.push(FnInfo {
                    name,
                    impl_type,
                    module,
                    crate_name: crate_name.clone(),
                    file: file_idx,
                    sig_line,
                    end_line: sig_line,
                    body: None,
                    arity,
                    param_names,
                    has_self,
                    has_return,
                    is_test,
                    source_reason,
                    is_sanitizer,
                });
                if let Some(bj) = brace_j {
                    ws.fns[fn_idx].body = Some((bj + 1, n_toks));
                    pending = Some(Scope::Fn(fn_idx));
                    i = bj;
                } else {
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(src: &str) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
        };
        index_file(&mut ws, "test_crate".into(), "crates/test/src/lib.rs".into(), src);
        ws
    }

    #[test]
    fn fns_are_indexed_with_modules_and_impls() {
        let src = "\
pub fn top(a: u32, b: u32) -> u32 { a + b }
mod inner {
    pub struct T;
    impl T {
        pub fn method(&self, x: u8) -> u8 { x }
    }
}
trait Tr {
    fn default_method(&self) -> u32 { 1 }
    fn decl_only(&self);
}
";
        let ws = ws_of(src);
        let names: Vec<(String, Option<String>, Vec<String>, usize, bool)> = ws
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    f.impl_type.clone(),
                    f.module.clone(),
                    f.arity,
                    f.has_self,
                )
            })
            .collect();
        assert_eq!(names.len(), 4, "{names:?}");
        assert_eq!(names[0], ("top".into(), None, vec![], 2, false));
        assert_eq!(
            names[1],
            (
                "method".into(),
                Some("T".into()),
                vec!["inner".into()],
                1,
                true
            )
        );
        assert_eq!(names[2].0, "default_method");
        assert_eq!(names[2].1, Some("Tr".into()));
        // decl_only has no body.
        assert_eq!(names[3].0, "decl_only");
        assert!(ws.fns[3].body.is_none());
        // Param names and return types.
        assert_eq!(ws.fns[0].param_names, vec![vec!["a".to_string()], vec!["b".into()]]);
        assert!(ws.fns[0].has_return);
        assert_eq!(ws.fns[1].param_names, vec![vec!["x".to_string()]]);
    }

    #[test]
    fn pattern_params_collect_all_names() {
        let src = "fn f((a, b): (u32, u32), mut c: Vec<u8>) { let _ = (a, b, c); }";
        let ws = ws_of(src);
        assert_eq!(
            ws.fns[0].param_names,
            vec![vec!["a".to_string(), "b".into()], vec!["c".into()]]
        );
        assert_eq!(ws.fns[0].arity, 2);
        assert!(!ws.fns[0].has_return);
    }

    #[test]
    fn impl_trait_for_type_records_the_type() {
        let src = "\
struct Foo;
impl std::fmt::Display for Foo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
impl<T: Clone> From<T> for Foo where T: Copy {
    fn from(_: T) -> Self { Foo }
}
";
        let ws = ws_of(src);
        assert_eq!(ws.fns[0].impl_type, Some("Foo".into()));
        assert_eq!(ws.fns[1].impl_type, Some("Foo".into()));
    }

    #[test]
    fn nested_fns_attribute_innermost() {
        let src = "\
fn outer() {
    fn helper(n: usize) -> usize { n + 1 }
    let _ = helper(2);
}
";
        let ws = ws_of(src);
        assert_eq!(ws.fns.len(), 2);
        let outer = &ws.fns[0];
        let helper = &ws.fns[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(helper.name, "helper");
        // The helper(2) call site lives inside outer but not helper.
        let call_idx = ws.files[0]
            .scanned
            .toks
            .iter()
            .position(|t| t.text == "helper" && t.line == 3)
            .unwrap();
        assert_eq!(ws.innermost_fn(0, call_idx), Some(0));
        // Tokens inside the helper body attribute to helper.
        let n_idx = ws.files[0]
            .scanned
            .toks
            .iter()
            .position(|t| t.text == "n" && t.line == 2 && t.col > 30)
            .unwrap();
        assert_eq!(ws.innermost_fn(0, n_idx), Some(1));
    }

    #[test]
    fn use_maps_expand_groups_and_aliases() {
        let src = "\
use std::collections::{BTreeMap, BTreeSet as Set};
use crate::wire::decode;
use s2_bdd::serialize::*;
fn f() {}
";
        let ws = ws_of(src);
        let uses = &ws.files[0].uses;
        assert_eq!(
            uses.get("BTreeMap").unwrap(),
            &vec!["std".to_string(), "collections".into(), "BTreeMap".into()]
        );
        assert_eq!(
            uses.get("Set").unwrap(),
            &vec!["std".to_string(), "collections".into(), "BTreeSet".into()]
        );
        assert_eq!(
            uses.get("decode").unwrap(),
            &vec!["crate".to_string(), "wire".into(), "decode".into()]
        );
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn check() {}
}
";
        let ws = ws_of(src);
        assert!(!ws.fns[0].is_test);
        assert!(ws.fns[1].is_test);
    }

    #[test]
    fn source_pragma_reason_is_attached() {
        let src = "\
// s2-lint: source(peer-input): frames in this inbox were read off peer sockets
pub fn pop(&self) -> Option<Vec<u8>> { None }
";
        let ws = ws_of(src);
        assert_eq!(ws.fns.len(), 1);
        assert!(ws.fns[0].source_reason.as_deref().unwrap().contains("peer sockets"));
    }
}
