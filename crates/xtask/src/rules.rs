//! The s2-lint rules: token-level checks of the S2 invariants.
//!
//! Each rule walks the [`Scanned`] token stream of one file and emits
//! [`Finding`]s. Test code (`#[cfg(test)]` spans) is exempt; findings
//! covered by a justified `// s2-lint: allow(rule): why` pragma are
//! reported as suppressed. A pragma with *no* justification text never
//! suppresses — it produces a `pragma-justification` finding instead.

use crate::lexer::{Scanned, Tok, TokKind};

/// Rule identifier for the pragma-hygiene meta rule.
pub const RULE_PRAGMA: &str = "pragma-justification";

/// The five S2 rules, in severity-of-invariant order.
pub const RULES: [&str; 5] = [
    "r1-panic-freedom",
    "r2-deterministic-iteration",
    "r3-no-wallclock-rng",
    "r4-bdd-node-boundary",
    "r5-obs-clock",
];

/// Rule identifier for a configured path that no longer exists.
pub const RULE_STALE_PATH: &str = "config-stale-path";

/// Rule identifier for a configured path already covered by call-graph
/// scope derivation.
pub const RULE_SUBSUMED: &str = "config-subsumed-scope";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired (one of [`RULES`], [`RULE_PRAGMA`],
    /// [`RULE_STALE_PATH`], or [`RULE_SUBSUMED`]).
    pub rule: String,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (1 when the finding has no precise token).
    pub col: u32,
    /// Stable finding ID (`S2L-…`), assigned after the final sort; the
    /// hash covers rule/file/message/occurrence but not line or column,
    /// so IDs survive unrelated edits above the finding.
    pub id: String,
    /// Human-readable description.
    pub message: String,
    /// Root→sink call chain for taint findings (empty otherwise).
    pub trace: Vec<String>,
    /// `Some(justification)` when an allow pragma suppressed this
    /// finding; `None` for live violations.
    pub suppressed_by: Option<String>,
}

impl Finding {
    /// Whether this finding still counts against the exit code.
    pub fn is_live(&self) -> bool {
        self.suppressed_by.is_none()
    }
}

/// Runs `rule` over one scanned file, appending findings.
pub fn run_rule(rule: &str, file: &str, s: &Scanned, out: &mut Vec<Finding>) {
    run_rule_range(rule, file, s, 0, s.toks.len(), out);
}

/// Runs `rule` over the token range `[lo, hi)` of one scanned file.
/// Used by the call-graph-derived scopes, which restrict a rule to the
/// bodies of taint-reachable functions rather than whole files.
pub fn run_rule_range(
    rule: &str,
    file: &str,
    s: &Scanned,
    lo: usize,
    hi: usize,
    out: &mut Vec<Finding>,
) {
    let hi = hi.min(s.toks.len());
    let lo = lo.min(hi);
    let raw: Vec<Finding> = match rule {
        "r1-panic-freedom" => r1(file, s, lo, hi),
        "r2-deterministic-iteration" => r2(file, s, lo, hi),
        "r3-no-wallclock-rng" => r3(file, s, lo, hi),
        "r4-bdd-node-boundary" => r4(file, s, lo, hi),
        "r5-obs-clock" => r5(file, s, lo, hi),
        _ => Vec::new(),
    };
    for mut f in raw {
        if s.in_test_code(f.line) {
            continue;
        }
        if let Some(p) = s.pragma_for(rule, f.line) {
            if p.justification.is_empty() {
                // An unjustified pragma does not suppress; the hygiene
                // rule (checked per file below) reports the pragma
                // itself, and the underlying violation stays live.
            } else {
                f.suppressed_by = Some(p.justification.clone());
            }
        }
        out.push(f);
    }
}

/// Emits `pragma-justification` findings for pragmas with no written
/// justification (checked once per file, not per rule).
pub fn check_pragma_hygiene(file: &str, s: &Scanned, out: &mut Vec<Finding>) {
    for p in &s.pragmas {
        if p.justification.is_empty() {
            out.push(finding(
                RULE_PRAGMA,
                file,
                p.line,
                1,
                format!(
                    "allow({}) pragma has no justification — write why the \
                     invariant holds after the colon",
                    p.rules.join(", ")
                ),
            ));
        }
    }
    for p in &s.sources {
        if p.reason.is_empty() {
            out.push(finding(
                RULE_PRAGMA,
                file,
                p.line,
                1,
                format!(
                    "source({}) pragma has no reason — write where the bytes \
                     come from after the colon",
                    p.label
                ),
            ));
        }
    }
    for p in &s.sanitizers {
        if p.reason.is_empty() {
            out.push(finding(
                RULE_PRAGMA,
                file,
                p.line,
                1,
                format!(
                    "sanitizer({}) pragma has no reason — write why the \
                     return value is bounded after the colon",
                    p.label
                ),
            ));
        }
    }
}

/// Constructs a finding with no trace and an unassigned ID (IDs are
/// stamped once per report, after the final sort).
pub fn finding(rule: &str, file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule: rule.into(),
        file: file.into(),
        line,
        col,
        id: String::new(),
        message,
        trace: Vec::new(),
        suppressed_by: None,
    }
}

/// R1: no `unwrap()` / `expect()` / panicking macros / slice indexing
/// in peer-input paths. A remote peer's bytes must never be able to
/// take a worker down: every malformed input becomes a typed error or
/// a counted protocol violation.
fn r1(file: &str, s: &Scanned, lo: usize, hi: usize) -> Vec<Finding> {
    const RULE: &str = "r1-panic-freedom";
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    let toks = &s.toks;
    for i in lo..hi {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if (t.text == "unwrap" || t.text == "expect") => {
                // `.unwrap()` / `.expect(` — method position only, so
                // `unwrap_or_else` (different ident) and local fns named
                // in other positions don't fire.
                let after_dot = i > 0 && toks[i - 1].text == ".";
                let called = toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false);
                if after_dot && called {
                    out.push(finding(
                        RULE,
                        file,
                        t.line,
                        t.col,
                        format!(
                            ".{}() in a peer-input path — convert to the typed \
                             error path (WireError / io::Error / counted skip)",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false) =>
            {
                out.push(finding(
                    RULE,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "{}! in a peer-input path — peers must not be able to trigger a panic",
                        t.text
                    ),
                ));
            }
            TokKind::Punct if t.text == "[" && is_index_expression(toks, i) => {
                out.push(finding(
                    RULE,
                    file,
                    t.line,
                    t.col,
                    "slice/array indexing in a peer-input path — use .get() \
                     or destructuring so out-of-range input cannot panic"
                        .into(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Whether the `[` at `toks[i]` indexes a value (as opposed to starting
/// an attribute, an array literal/type, or a macro invocation body).
/// Shared with the taint pass in [`crate::taint`].
pub fn is_index_expression(toks: &[Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
        return false;
    };
    match prev.kind {
        // `expr[...]` forms: an identifier, call/paren result, or prior
        // index directly before `[`. Keywords introduce patterns or
        // array expressions (`let [a, b] = ...`, `return [x]`), not
        // indexing; `vec![...]`-style macro bodies are `ident ! [` so
        // their `[` follows `!`, and array types `[u8; 4]` follow
        // `:`/`<`/`(`/`->` — none of which reach the Ident arm.
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "let" | "mut" | "ref" | "in" | "return" | "break" | "else" | "match" | "move" | "if"
        ),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        TokKind::Literal => false,
    }
}

/// R2: no `HashMap`/`HashSet` in modules whose output feeds wire
/// frames, checkpoints, or BDD serialization. Hash iteration order is
/// nondeterministic across processes (SipHash keys differ), which
/// silently breaks S2's bit-identical-RIB guarantee; use `BTreeMap`/
/// `BTreeSet` or an explicit sort at the encoding boundary.
fn r2(file: &str, s: &Scanned, lo: usize, hi: usize) -> Vec<Finding> {
    const RULE: &str = "r2-deterministic-iteration";
    let mut out = Vec::new();
    for t in &s.toks[lo..hi] {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(finding(
                RULE,
                file,
                t.line,
                t.col,
                format!(
                    "{} in a wire-encoding module — hash iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or sort before \
                     encoding",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R3: no wall clock or ambient RNG in the pure deterministic crates
/// (`routing`, `bdd`, `dataplane`). These crates compute the fixed
/// point whose bit-identity across partitionings is the paper's
/// headline guarantee; time and randomness may only enter through the
/// runtime layer.
fn r3(file: &str, s: &Scanned, lo: usize, hi: usize) -> Vec<Finding> {
    const RULE: &str = "r3-no-wallclock-rng";
    const BANNED: [&str; 5] = [
        "Instant",
        "SystemTime",
        "thread_rng",
        "from_entropy",
        "random",
    ];
    let mut out = Vec::new();
    for t in &s.toks[lo..hi] {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(finding(
                RULE,
                file,
                t.line,
                t.col,
                format!(
                    "{} in a deterministic crate — wall clock / ambient RNG \
                     would break bit-identical replay; inject via the runtime \
                     layer instead",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R4: raw BDD node handles must not cross the Transport/wire API
/// boundary. A `Bdd`/`BddManager` index is private to one worker's
/// manager (§4.3); the only legal crossing is the byte format of
/// `s2_bdd::serialize`, re-encoded on arrival.
fn r4(file: &str, s: &Scanned, lo: usize, hi: usize) -> Vec<Finding> {
    const RULE: &str = "r4-bdd-node-boundary";
    let mut out = Vec::new();
    let toks = &s.toks;
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "s2_bdd" => {
                // `s2_bdd::serialize::...` is the sanctioned crossing.
                let via_serialize = toks.get(i + 1).map(|a| a.text == ":").unwrap_or(false)
                    && toks.get(i + 2).map(|a| a.text == ":").unwrap_or(false)
                    && toks
                        .get(i + 3)
                        .map(|a| a.text == "serialize")
                        .unwrap_or(false);
                if !via_serialize {
                    out.push(finding(
                        RULE,
                        file,
                        t.line,
                        t.col,
                        "s2_bdd used in a wire-boundary module outside the \
                         serialize layer — raw node ids are meaningless across \
                         workers"
                            .into(),
                    ));
                }
            }
            "BddManager" | "Bdd" => {
                out.push(finding(
                    RULE,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "{} handle in a wire-boundary module — BDD nodes cross \
                         workers only as s2_bdd::serialize bytes, re-encoded on \
                         arrival",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// R5: the wall clock is quarantined in `crates/obs`. Everywhere else,
/// elapsed time is measured with `s2_obs::Stopwatch`, bounded waits use
/// `s2_obs::Deadline`, and trace timestamps come through a `Clock`
/// impl — all narrow, test-substitutable wrappers. Direct `Instant` /
/// `SystemTime` use bypasses that discipline (and `ManualClock`-driven
/// tests cannot reach it).
fn r5(file: &str, s: &Scanned, lo: usize, hi: usize) -> Vec<Finding> {
    const RULE: &str = "r5-obs-clock";
    const BANNED: [&str; 2] = ["Instant", "SystemTime"];
    let mut out = Vec::new();
    for t in &s.toks[lo..hi] {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(finding(
                RULE,
                file,
                t.line,
                t.col,
                format!(
                    "{} outside crates/obs — measure with s2_obs::Stopwatch, \
                     bound waits with s2_obs::Deadline, or take timestamps \
                     from a s2_obs::Clock",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn live(rule: &str, src: &str) -> Vec<Finding> {
        let s = scan(src);
        let mut out = Vec::new();
        run_rule(rule, "test.rs", &s, &mut out);
        out.into_iter().filter(|f| f.is_live()).collect()
    }

    #[test]
    fn r1_catches_unwrap_and_indexing_but_not_lookalikes() {
        let f = live(
            "r1-panic-freedom",
            "fn f(v: Vec<u8>) { v.unwrap(); let x = v[0]; v.unwrap_or_else(|| 1); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(live("r1-panic-freedom", "let v = vec![1, 2];").is_empty());
        assert!(live("r1-panic-freedom", "#[derive(Debug)] struct S;").is_empty());
        assert!(live("r1-panic-freedom", "fn g(x: [u8; 4]) -> [u8; 2] { todo() }").is_empty());
    }

    #[test]
    fn r1_catches_panic_macros() {
        assert_eq!(live("r1-panic-freedom", "panic!(\"boom\");").len(), 1);
        assert_eq!(live("r1-panic-freedom", "unreachable!();").len(), 1);
        // `panic` as a path segment (std::panic::catch_unwind) is fine.
        assert!(live("r1-panic-freedom", "std::panic::catch_unwind(f);").is_empty());
    }

    #[test]
    fn r2_flags_hash_collections() {
        assert_eq!(live("r2-deterministic-iteration", "use std::collections::HashMap;").len(), 1);
        assert!(live("r2-deterministic-iteration", "use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn r3_flags_clock_and_rng() {
        assert_eq!(live("r3-no-wallclock-rng", "let t = Instant::now();").len(), 1);
        assert_eq!(live("r3-no-wallclock-rng", "let r = thread_rng();").len(), 1);
        assert!(live("r3-no-wallclock-rng", "let d = Duration::from_secs(1);").is_empty());
    }

    #[test]
    fn r5_flags_raw_clock_types_but_not_the_wrappers() {
        assert_eq!(live("r5-obs-clock", "let t = Instant::now();").len(), 1);
        assert_eq!(live("r5-obs-clock", "use std::time::SystemTime;").len(), 1);
        assert!(live("r5-obs-clock", "let sw = Stopwatch::start();").is_empty());
        assert!(live("r5-obs-clock", "let d = Deadline::after(timeout);").is_empty());
    }

    #[test]
    fn r4_allows_only_the_serialize_path() {
        assert!(live("r4-bdd-node-boundary", "let b = s2_bdd::serialize::to_bytes(m, f);").is_empty());
        assert_eq!(live("r4-bdd-node-boundary", "use s2_bdd::manager::Bdd;").len(), 2);
        assert_eq!(live("r4-bdd-node-boundary", "fn f(m: &BddManager) {}").len(), 1);
    }

    #[test]
    fn pragmas_suppress_with_justification_only() {
        let justified = "\
// s2-lint: allow(r1-panic-freedom): index masked with & 0xff
let x = table[i];
";
        let s = scan(justified);
        let mut out = Vec::new();
        run_rule("r1-panic-freedom", "t.rs", &s, &mut out);
        check_pragma_hygiene("t.rs", &s, &mut out);
        assert!(out.iter().all(|f| !f.is_live()), "{out:?}");

        let bare = "\
// s2-lint: allow(r1-panic-freedom)
let x = table[i];
";
        let s = scan(bare);
        let mut out = Vec::new();
        run_rule("r1-panic-freedom", "t.rs", &s, &mut out);
        check_pragma_hygiene("t.rs", &s, &mut out);
        let live: Vec<_> = out.iter().filter(|f| f.is_live()).collect();
        assert_eq!(live.len(), 2, "violation + hygiene finding: {live:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { v.unwrap(); }
}
";
        assert!(live("r1-panic-freedom", src).is_empty());
    }
}
