//! Observability artifact checks behind `cargo xtask trace-check` and
//! `cargo xtask obs-symbols`.
//!
//! `trace-check` validates a Chrome `trace_event` JSON document the way
//! `chrome://tracing` / Perfetto would load it — top-level
//! `traceEvents` array, well-formed `ph:"X"` / `ph:"i"` / `ph:"M"`
//! records — and additionally enforces the S2-specific shape: required
//! span names present and a minimum number of distinct lanes (one per
//! worker plus the controller).
//!
//! `obs-symbols` proves the obs-off build really is compile-time zero:
//! it scans a compiled binary for the dotted span-name literals and
//! fails if any survived into the image (the no-op `span!`/`event!`
//! macros discard the name tokens at expansion, so none should).

use s2_obs::{parse_json, Json};

/// What a validated trace contained, for human-readable reporting.
#[derive(Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Span/instant events (metadata records excluded).
    pub events: usize,
    /// Distinct lanes (`tid`s) that carried at least one event.
    pub lanes: Vec<u64>,
    /// Distinct event names, sorted.
    pub names: Vec<String>,
}

fn num_field(e: &Json, key: &str) -> Option<f64> {
    e.get(key).and_then(Json::as_num)
}

/// Validates `text` as a Chrome trace and checks the S2 shape: every
/// name in `required` appears, and at least `min_lanes` distinct lanes
/// carried events.
pub fn check_trace(text: &str, required: &[String], min_lanes: usize) -> Result<TraceSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Some(Json::Arr(rows)) = doc.get("traceEvents") else {
        return Err("top-level 'traceEvents' array missing".to_string());
    };

    let mut events = 0usize;
    let mut lanes: Vec<u64> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'name'"))?;
        let ph = row
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        let tid = num_field(row, "tid").ok_or_else(|| format!("event {i}: missing numeric 'tid'"))?;
        if num_field(row, "pid").is_none() {
            return Err(format!("event {i}: missing numeric 'pid'"));
        }
        match ph {
            "M" => continue, // thread_name metadata: no timestamp
            "X" => {
                let ts = num_field(row, "ts")
                    .ok_or_else(|| format!("event {i} ({name}): span missing 'ts'"))?;
                let dur = num_field(row, "dur")
                    .ok_or_else(|| format!("event {i} ({name}): span missing 'dur'"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative ts/dur"));
                }
            }
            "i" => {
                if num_field(row, "ts").is_none() {
                    return Err(format!("event {i} ({name}): instant missing 'ts'"));
                }
            }
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
        events += 1;
        let lane = tid as u64;
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    }
    lanes.sort_unstable();
    names.sort_unstable();

    for want in required {
        if !names.iter().any(|n| n == want) {
            return Err(format!(
                "required span {want:?} absent (trace has: {})",
                names.join(", ")
            ));
        }
    }
    if lanes.len() < min_lanes {
        return Err(format!(
            "only {} lane(s) carried events, need at least {min_lanes}",
            lanes.len()
        ));
    }
    Ok(TraceSummary {
        events,
        lanes,
        names,
    })
}

/// Validates a Prometheus text-exposition document (what `echo metrics
/// | nc` returns from a daemon admin socket) and checks that every
/// `required` series substring appears. Returns the family count and
/// sample count for reporting.
pub fn check_expo(text: &str, required: &[String]) -> Result<(usize, usize), String> {
    let stats = s2_obs::expo::validate(text)?;
    for series in required {
        if !text.contains(series.as_str()) {
            return Err(format!("required series {series:?} not found in exposition"));
        }
    }
    Ok((stats.families.len(), stats.samples))
}

/// The dotted span-name literals the obs-off binary must not contain.
/// Dotted forms are used verbatim nowhere else, so a hit means the
/// tracing macros compiled the name in. Span names that are a prefix of
/// an always-on metric name (e.g. the `tcp.reconnect` span vs. the
/// `tcp.reconnects` counter) are excluded — metrics are compiled in
/// regardless of the `obs` feature.
pub const SPAN_NEEDLES: [&str; 7] = [
    "cp.round",
    "shard.wave",
    "bdd.reencode",
    "verify.dpv",
    "credit.stall",
    "recovery.epoch",
    "dpv.compile_preds",
];

/// Scans `bytes` (a compiled binary) for `needles`; returns the ones
/// found. Empty result = the build carries no tracing span names.
pub fn find_symbols<'a>(bytes: &[u8], needles: &'a [&'a str]) -> Vec<&'a str> {
    needles
        .iter()
        .filter(|n| {
            let n = n.as_bytes();
            !n.is_empty() && bytes.windows(n.len()).any(|w| w == n)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    const GOOD: &str = r#"{"traceEvents":[
        {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"controller"}},
        {"name":"cp.round","ph":"X","pid":1,"tid":0,"ts":1.5,"dur":20.0,"args":{"arg":3,"depth":0}},
        {"name":"barrier","ph":"X","pid":1,"tid":1,"ts":2.0,"dur":5.0,"args":{"arg":0,"depth":1}},
        {"name":"bdd.resize","ph":"i","s":"t","pid":1,"tid":2,"ts":4.0,"args":{"arg":16,"depth":0}}
    ]}"#;

    #[test]
    fn valid_trace_summarizes_names_and_lanes() {
        let s = check_trace(GOOD, &req(&["cp.round", "barrier"]), 3).unwrap();
        assert_eq!(s.events, 3, "metadata rows are not events");
        assert_eq!(s.lanes, vec![0, 1, 2]);
        assert_eq!(s.names, vec!["barrier", "bdd.resize", "cp.round"]);
    }

    #[test]
    fn missing_required_span_and_short_lanes_fail() {
        let err = check_trace(GOOD, &req(&["shard.wave"]), 1).unwrap_err();
        assert!(err.contains("shard.wave"), "{err}");
        let err = check_trace(GOOD, &req(&[]), 4).unwrap_err();
        assert!(err.contains("lane"), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for (text, why) in [
            ("{", "JSON"),
            ("{\"other\":[]}", "traceEvents"),
            ("{\"traceEvents\":[{\"ph\":\"X\"}]}", "name"),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1}]}",
                "dur",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Q\",\"pid\":1,\"tid\":0}]}",
                "ph",
            ),
        ] {
            let err = check_trace(text, &[], 0).unwrap_err();
            assert!(err.contains(why), "{text} -> {err}");
        }
    }

    #[test]
    fn expo_check_validates_and_requires_series() {
        let mut snap = s2_obs::MetricsSnapshot::default();
        snap.counter("dpv.scoped.runs", 3);
        snap.gauge_max("daemon.generation", 2);
        let doc = s2_obs::expo::render(&snap, &[]);
        let (families, samples) = check_expo(&doc, &req(&["s2_dpv_scoped_runs 3"])).unwrap();
        assert_eq!(families, 2);
        assert!(samples >= 2);

        let err = check_expo(&doc, &req(&["s2_missing_series"])).unwrap_err();
        assert!(err.contains("s2_missing_series"), "{err}");
        let err = check_expo("not an exposition {", &[]).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn symbol_scan_finds_only_present_needles() {
        let image = b"...rodata...cp.round...more...credit.stall...";
        let hits = find_symbols(image, &SPAN_NEEDLES);
        assert_eq!(hits, vec!["cp.round", "credit.stall"]);
        assert!(find_symbols(b"clean binary", &SPAN_NEEDLES).is_empty());
    }
}
