//! s2-lint: the S2 workspace static-analysis pass.
//!
//! Run as `cargo xtask lint` (see the `xtask` alias in
//! `.cargo/config.toml`); `cargo xtask trace-check` / `obs-symbols`
//! validate observability artifacts (see [`obscheck`]). The lint pass
//! enforces the source-level invariants
//! S2's distributed-correctness story depends on — panic-freedom on
//! peer-input paths, deterministic iteration on wire-encoding paths, no
//! ambient time/randomness in the pure crates, and the BDD re-encode
//! boundary — as machine-checked rules over the token stream of each
//! configured file. See DESIGN.md § "Static analysis" for the rule ↔
//! paper-invariant mapping and `s2-lint.toml` for the scope of each
//! rule.
//!
//! v2 adds a workspace pass: [`index`] parses every crate into a
//! function/call index and [`taint`] runs an interprocedural taint
//! analysis from transport deframe entry points to panic/allocation
//! sinks. The scopes of R1, R2, and R4 are *derived* from that call
//! graph (taint-reachable functions, wire-emitting files) instead of
//! hand-maintained path lists; configured paths remain honored
//! additively, and a path whose files are all inside the derived scope
//! draws a `config-subsumed-scope` finding.

pub mod config;
pub mod index;
pub mod lexer;
pub mod obscheck;
pub mod rules;
pub mod taint;

use config::{Config, Level};
use rules::Finding;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Every finding (live and suppressed), in file/line order.
    pub findings: Vec<Finding>,
    /// Files scanned (repo-relative), for `--verbose`-style output.
    pub files_scanned: usize,
    /// Whether any live finding belongs to a deny-level rule.
    pub failed: bool,
}

/// Runs every configured rule over the tree rooted at `root`.
///
/// `deny_all` promotes warn-level rules to deny (the CI mode).
pub fn run(root: &Path, cfg: &Config, deny_all: bool) -> Result<LintReport, String> {
    let mut findings: Vec<Finding> = Vec::new();

    // file path -> scanned tokens, shared across rules scoping the file.
    let mut cache: Vec<(String, lexer::Scanned)> = Vec::new();

    for (rule, rc) in &cfg.rules {
        if !rules::RULES.contains(&rule.as_str()) {
            return Err(format!(
                "unknown rule {rule:?} in config (known: {})",
                rules::RULES.join(", ")
            ));
        }
        for (pi, path) in rc.paths.iter().enumerate() {
            let rels = match expand(root, path) {
                Ok(rels) => rels,
                Err(_) => {
                    // A configured path that no longer exists is a lint
                    // finding against the config itself, not a crash:
                    // the tree moved and s2-lint.toml went stale.
                    let mut f = rules::finding(
                        rules::RULE_STALE_PATH,
                        "s2-lint.toml",
                        rc.path_lines.get(pi).copied().unwrap_or(0),
                        1,
                        format!("rule {rule}: configured path {path:?} does not exist"),
                    );
                    if !deny_all {
                        f.suppressed_by = Some("(warn-level rule)".into());
                    }
                    findings.push(f);
                    continue;
                }
            };
            for rel in rels {
                let idx = match cache.iter().position(|(p, _)| p == &rel) {
                    Some(i) => i,
                    None => {
                        let text = std::fs::read_to_string(root.join(&rel))
                            .map_err(|e| format!("{rel}: {e}"))?;
                        cache.push((rel.clone(), lexer::scan(&text)));
                        cache.len() - 1
                    }
                };
                let (file, s) = &cache[idx];
                let before = findings.len();
                rules::run_rule(rule, file, s, &mut findings);
                if rc.level == Level::Warn && !deny_all {
                    tag_warn(&mut findings[before..]);
                }
            }
        }
    }

    // Workspace pass: index every crate and run the call-graph taint
    // analysis. Absent a `crates/` dir (fixture trees, scoped runs on a
    // subdirectory) the index is empty and this is a no-op.
    let ws = index::build(root)?;
    let analysis = if ws.fns.is_empty() {
        None
    } else {
        Some(taint::analyze(&ws))
    };

    if let Some(a) = &analysis {
        // Taint findings are R1: a peer-controlled byte flow reaching a
        // panic/allocation sink anywhere in the workspace.
        let r1_level = level_of(cfg, "r1-panic-freedom");
        let before = findings.len();
        for tf in &a.findings {
            let entry = &ws.files[tf.file];
            if entry.scanned.in_test_code(tf.line) {
                continue;
            }
            let mut f = rules::finding(
                "r1-panic-freedom",
                &entry.path,
                tf.line,
                tf.col,
                tf.message.clone(),
            );
            f.trace = tf.trace.clone();
            if let Some(p) = entry.scanned.pragma_for("r1-panic-freedom", tf.line) {
                if !p.justification.is_empty() {
                    f.suppressed_by = Some(p.justification.clone());
                }
            }
            findings.push(f);
        }
        if r1_level == Level::Warn && !deny_all {
            tag_warn(&mut findings[before..]);
        }

        // Derived R2 scope: whole files that contain a taint-reached or
        // wire-emitting function (HashMap/HashSet idents live in use
        // lines and struct fields, so the scope is file-granular).
        let r2_level = level_of(cfg, "r2-deterministic-iteration");
        for &fi in &a.scope_r2_files {
            let entry = &ws.files[fi];
            let before = findings.len();
            rules::run_rule(
                "r2-deterministic-iteration",
                &entry.path,
                &entry.scanned,
                &mut findings,
            );
            if r2_level == Level::Warn && !deny_all {
                tag_warn(&mut findings[before..]);
            }
        }

        // Derived R4 scope: function-granular (signature + body) so a
        // crate that legitimately owns BDD managers is not dragged in
        // by an unrelated taint-reached helper in the same file.
        let r4_level = level_of(cfg, "r4-bdd-node-boundary");
        for &id in &a.scope_r4 {
            let fi = &ws.fns[id];
            let entry = &ws.files[fi.file];
            let Some((lo, hi)) = fn_tok_range(fi, &entry.scanned) else {
                continue;
            };
            let before = findings.len();
            rules::run_rule_range(
                "r4-bdd-node-boundary",
                &entry.path,
                &entry.scanned,
                lo,
                hi,
                &mut findings,
            );
            if r4_level == Level::Warn && !deny_all {
                tag_warn(&mut findings[before..]);
            }
        }

        // Configured paths fully covered by the derived scopes are
        // stale config: flag them so the path lists shrink instead of
        // accreting.
        let derived_r1: BTreeSet<&str> = a
            .scope_r1
            .iter()
            .map(|&id| ws.files[ws.fns[id].file].path.as_str())
            .collect();
        let derived_r2: BTreeSet<&str> = a
            .scope_r2_files
            .iter()
            .map(|&fi| ws.files[fi].path.as_str())
            .collect();
        let derived_r4: BTreeSet<&str> = a
            .scope_r4
            .iter()
            .map(|&id| ws.files[ws.fns[id].file].path.as_str())
            .collect();
        for (rule, derived) in [
            ("r1-panic-freedom", &derived_r1),
            ("r2-deterministic-iteration", &derived_r2),
            ("r4-bdd-node-boundary", &derived_r4),
        ] {
            let Some(rc) = cfg.rules.get(rule) else {
                continue;
            };
            for (pi, path) in rc.paths.iter().enumerate() {
                let Ok(rels) = expand(root, path) else {
                    continue; // already reported as stale
                };
                if !rels.is_empty() && rels.iter().all(|r| derived.contains(r.as_str())) {
                    let mut f = rules::finding(
                        rules::RULE_SUBSUMED,
                        "s2-lint.toml",
                        rc.path_lines.get(pi).copied().unwrap_or(0),
                        1,
                        format!(
                            "rule {rule}: configured path {path:?} is already covered \
                             by the call-graph-derived scope — remove it"
                        ),
                    );
                    if !deny_all {
                        f.suppressed_by = Some("(warn-level rule)".into());
                    }
                    findings.push(f);
                }
            }
        }
    }

    // Pragma hygiene runs on every file any rule touched plus every
    // indexed workspace file (duplicates fall out in the dedup below).
    for (file, s) in &cache {
        rules::check_pragma_hygiene(file, s, &mut findings);
    }
    for entry in &ws.files {
        rules::check_pragma_hygiene(&entry.path, &entry.scanned, &mut findings);
    }

    let mut seen: BTreeSet<&str> = cache.iter().map(|(p, _)| p.as_str()).collect();
    seen.extend(ws.files.iter().map(|e| e.path.as_str()));
    let files_scanned = seen.len();

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
            b.message.as_str(),
        ))
    });
    // Nested fns re-scan their enclosing fn's body range and a file can
    // be both configured and scope-derived; identical findings collapse.
    findings.dedup_by(|a, b| {
        a.rule == b.rule
            && a.file == b.file
            && a.line == b.line
            && a.col == b.col
            && a.message == b.message
    });
    assign_ids(&mut findings);

    let failed = findings.iter().any(|f| f.is_live());
    Ok(LintReport {
        findings,
        files_scanned,
        failed,
    })
}

/// Marks still-live findings in `slice` as warn-suppressed.
fn tag_warn(slice: &mut [Finding]) {
    for f in slice {
        if f.is_live() {
            f.suppressed_by = Some("(warn-level rule)".into());
        }
    }
}

fn level_of(cfg: &Config, rule: &str) -> Level {
    cfg.rules.get(rule).map(|rc| rc.level).unwrap_or(Level::Deny)
}

/// Token range covering a function's signature and body: from the first
/// token on its signature line to its closing brace.
fn fn_tok_range(fi: &index::FnInfo, s: &lexer::Scanned) -> Option<(usize, usize)> {
    let (_, hi) = fi.body?;
    let lo = s.toks.partition_point(|t| t.line < fi.sig_line);
    Some((lo, hi))
}

/// Stamps stable IDs: FNV-1a over `rule|file|message|occurrence`, so an
/// ID survives edits that only move the finding to another line.
fn assign_ids(findings: &mut [Finding]) {
    use std::collections::BTreeMap;
    let mut occurrence: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for f in findings {
        let key = (f.rule.clone(), f.file.clone(), f.message.clone());
        let k = occurrence.entry(key).or_insert(0);
        let h = fnv1a(&format!("{}|{}|{}|{}", f.rule, f.file, f.message, k));
        *k += 1;
        f.id = format!("S2L-{:010x}", h & 0xff_ffff_ffff);
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Expands a configured path: a file maps to itself, a directory to
/// every `.rs` file under it (recursively), sorted for stable output.
fn expand(root: &Path, rel: &str) -> Result<Vec<String>, String> {
    let full = root.join(rel);
    if full.is_file() {
        return Ok(vec![rel.to_string()]);
    }
    if full.is_dir() {
        let mut out = Vec::new();
        walk(&full, &mut out).map_err(|e| format!("{rel}: {e}"))?;
        let mut rels: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(root)
                    .ok()
                    .map(|r| r.to_string_lossy().into_owned())
            })
            .collect();
        rels.sort();
        return Ok(rels);
    }
    Err(format!("configured path {rel:?} does not exist"))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders findings for humans.
pub fn render_human(report: &LintReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let mut live = 0;
    let mut suppressed = 0;
    for f in &report.findings {
        match &f.suppressed_by {
            None => {
                live += 1;
                let _ = writeln!(
                    s,
                    "deny[{}]: {}:{}:{}: {} [{}]",
                    f.rule, f.file, f.line, f.col, f.message, f.id
                );
                for step in &f.trace {
                    let _ = writeln!(s, "    flow: {step}");
                }
            }
            Some(why) => {
                suppressed += 1;
                let _ = writeln!(
                    s,
                    "allow[{}]: {}:{}:{} — {}",
                    f.rule, f.file, f.line, f.col, why
                );
            }
        }
    }
    let _ = writeln!(
        s,
        "s2-lint: {} file(s), {} violation(s), {} suppressed",
        report.files_scanned, live, suppressed
    );
    s
}

/// Renders findings as a JSON array (machine mode, `--format json`).
pub fn render_json(report: &LintReport) -> String {
    let mut s = String::from("[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let trace = f
            .trace
            .iter()
            .map(|t| json_str(t))
            .collect::<Vec<_>>()
            .join(",");
        s.push_str(&format!(
            "{{\"id\":{},\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"suppressed\":{},\"justification\":{},\"trace\":[{}]}}",
            json_str(&f.id),
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.message),
            !f.is_live(),
            f.suppressed_by
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".into()),
            trace,
        ));
    }
    s.push(']');
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
