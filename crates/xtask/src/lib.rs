//! s2-lint: the S2 workspace static-analysis pass.
//!
//! Run as `cargo xtask lint` (see the `xtask` alias in
//! `.cargo/config.toml`); `cargo xtask trace-check` / `obs-symbols`
//! validate observability artifacts (see [`obscheck`]). The lint pass
//! enforces the source-level invariants
//! S2's distributed-correctness story depends on — panic-freedom on
//! peer-input paths, deterministic iteration on wire-encoding paths, no
//! ambient time/randomness in the pure crates, and the BDD re-encode
//! boundary — as machine-checked rules over the token stream of each
//! configured file. See DESIGN.md § "Static analysis" for the rule ↔
//! paper-invariant mapping and `s2-lint.toml` for the scope of each
//! rule.

pub mod config;
pub mod lexer;
pub mod obscheck;
pub mod rules;

use config::{Config, Level};
use rules::Finding;
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Every finding (live and suppressed), in file/line order.
    pub findings: Vec<Finding>,
    /// Files scanned (repo-relative), for `--verbose`-style output.
    pub files_scanned: usize,
    /// Whether any live finding belongs to a deny-level rule.
    pub failed: bool,
}

/// Runs every configured rule over the tree rooted at `root`.
///
/// `deny_all` promotes warn-level rules to deny (the CI mode).
pub fn run(root: &Path, cfg: &Config, deny_all: bool) -> Result<LintReport, String> {
    let mut findings: Vec<Finding> = Vec::new();

    // file path -> scanned tokens, shared across rules scoping the file.
    let mut cache: Vec<(String, lexer::Scanned)> = Vec::new();

    for (rule, rc) in &cfg.rules {
        if !rules::RULES.contains(&rule.as_str()) {
            return Err(format!(
                "unknown rule {rule:?} in config (known: {})",
                rules::RULES.join(", ")
            ));
        }
        for path in &rc.paths {
            for rel in expand(root, path)? {
                let idx = match cache.iter().position(|(p, _)| p == &rel) {
                    Some(i) => i,
                    None => {
                        let text = std::fs::read_to_string(root.join(&rel))
                            .map_err(|e| format!("{rel}: {e}"))?;
                        cache.push((rel.clone(), lexer::scan(&text)));
                        cache.len() - 1
                    }
                };
                let (file, s) = &cache[idx];
                let before = findings.len();
                rules::run_rule(rule, file, s, &mut findings);
                // Tag warn-level findings unless promoted.
                if rc.level == Level::Warn && !deny_all {
                    for f in &mut findings[before..] {
                        if f.is_live() {
                            f.suppressed_by = Some("(warn-level rule)".into());
                        }
                    }
                }
            }
        }
    }
    // Pragma hygiene runs on every file any rule touched.
    for (file, s) in &cache {
        rules::check_pragma_hygiene(file, s, &mut findings);
    }
    let files_scanned = cache.len();

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    let failed = findings.iter().any(|f| f.is_live());
    Ok(LintReport {
        findings,
        files_scanned,
        failed,
    })
}

/// Expands a configured path: a file maps to itself, a directory to
/// every `.rs` file under it (recursively), sorted for stable output.
fn expand(root: &Path, rel: &str) -> Result<Vec<String>, String> {
    let full = root.join(rel);
    if full.is_file() {
        return Ok(vec![rel.to_string()]);
    }
    if full.is_dir() {
        let mut out = Vec::new();
        walk(&full, &mut out).map_err(|e| format!("{rel}: {e}"))?;
        let mut rels: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(root)
                    .ok()
                    .map(|r| r.to_string_lossy().into_owned())
            })
            .collect();
        rels.sort();
        return Ok(rels);
    }
    Err(format!("configured path {rel:?} does not exist"))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders findings for humans.
pub fn render_human(report: &LintReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let mut live = 0;
    let mut suppressed = 0;
    for f in &report.findings {
        match &f.suppressed_by {
            None => {
                live += 1;
                let _ = writeln!(s, "deny[{}]: {}:{}: {}", f.rule, f.file, f.line, f.message);
            }
            Some(why) => {
                suppressed += 1;
                let _ = writeln!(
                    s,
                    "allow[{}]: {}:{} — {}",
                    f.rule, f.file, f.line, why
                );
            }
        }
    }
    let _ = writeln!(
        s,
        "s2-lint: {} file(s), {} violation(s), {} suppressed",
        report.files_scanned, live, suppressed
    );
    s
}

/// Renders findings as a JSON array (machine mode, `--format json`).
pub fn render_json(report: &LintReport) -> String {
    let mut s = String::from("[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"suppressed\":{},\"justification\":{}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            !f.is_live(),
            f.suppressed_by
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".into()),
        ));
    }
    s.push(']');
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
