//! Loader for `s2-lint.toml` — the rule → path-scope mapping.
//!
//! A deliberately small TOML subset (no external parser is vendored):
//! `[rules.<name>]` section headers, `paths = ["...", ...]` string
//! arrays (single- or multi-line), `level = "deny" | "warn"` strings,
//! and `#` comments. Anything else is a hard error — better to reject a
//! config than to silently lint nothing.
//!
//! ```toml
//! [rules.r1-panic-freedom]
//! level = "deny"
//! paths = [
//!     "crates/runtime/src/tcp.rs",
//!     "crates/runtime/src/remote.rs",
//! ]
//! ```
//!
//! A path naming a directory means "every `.rs` file under it,
//! recursively".

use std::collections::BTreeMap;

/// Enforcement level of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Live findings fail the run.
    Deny,
    /// Live findings are reported but do not affect the exit code
    /// (unless `--deny-all` promotes them).
    Warn,
}

/// Scope + level of one rule.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Files or directories (repo-relative) the rule applies to.
    pub paths: Vec<String>,
    /// 1-based config line each entry of `paths` appeared on (aligned
    /// with `paths`; used to point stale-path findings at the config).
    pub path_lines: Vec<u32>,
    /// Enforcement level.
    pub level: Level,
}

/// The parsed config: rule name → scope.
#[derive(Debug, Default)]
pub struct Config {
    /// Per-rule configuration, in name order.
    pub rules: BTreeMap<String, RuleConfig>,
}

/// Parses the config text. Errors carry the offending line.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut current: Option<String> = None;
    let mut pending_array: Option<Vec<(String, u32)>> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(items) = pending_array.as_mut() {
            // Inside a multi-line array: accumulate strings until `]`.
            let closed = line.contains(']');
            let body = line.trim_end_matches(']').trim().trim_end_matches(',');
            if !body.is_empty() {
                for s in split_strings(body, lineno)? {
                    items.push((s, lineno as u32 + 1));
                }
            }
            if closed {
                let items = pending_array.take().unwrap_or_default();
                let rc = rule_mut(&mut cfg, &current, lineno)?;
                (rc.paths, rc.path_lines) = items.into_iter().unzip();
            }
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = section
                .strip_prefix("rules.")
                .ok_or_else(|| format!("line {}: only [rules.<name>] sections are supported", lineno + 1))?;
            cfg.rules.insert(
                name.to_string(),
                RuleConfig {
                    paths: Vec::new(),
                    path_lines: Vec::new(),
                    level: Level::Deny,
                },
            );
            current = Some(name.to_string());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "paths" => {
                let inner = value
                    .strip_prefix('[')
                    .ok_or_else(|| format!("line {}: paths must be an array", lineno + 1))?;
                if let Some(done) = inner.strip_suffix(']') {
                    let rc = rule_mut(&mut cfg, &current, lineno)?;
                    rc.paths = split_strings(done, lineno)?;
                    rc.path_lines = vec![lineno as u32 + 1; rc.paths.len()];
                } else {
                    pending_array = Some(
                        split_strings(inner, lineno)?
                            .into_iter()
                            .map(|s| (s, lineno as u32 + 1))
                            .collect(),
                    );
                }
            }
            "level" => {
                let level = match value.trim_matches('"') {
                    "deny" => Level::Deny,
                    "warn" => Level::Warn,
                    other => {
                        return Err(format!(
                            "line {}: level must be \"deny\" or \"warn\", got {other:?}",
                            lineno + 1
                        ))
                    }
                };
                rule_mut(&mut cfg, &current, lineno)?.level = level;
            }
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    if pending_array.is_some() {
        return Err("unterminated paths array".into());
    }
    Ok(cfg)
}

fn rule_mut<'a>(
    cfg: &'a mut Config,
    current: &Option<String>,
    lineno: usize,
) -> Result<&'a mut RuleConfig, String> {
    let name = current
        .as_ref()
        .ok_or_else(|| format!("line {}: key outside a [rules.<name>] section", lineno + 1))?;
    cfg.rules
        .get_mut(name)
        .ok_or_else(|| format!("line {}: internal: section {name:?} missing", lineno + 1))
}

/// Splits `"a", "b"` into the contained strings.
fn split_strings(body: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: expected a quoted string, got {part:?}", lineno + 1))?;
        out.push(s.to_string());
    }
    Ok(out)
}

/// Comments start at a `#` outside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_levels() {
        let cfg = parse(
            r#"
# comment
[rules.r1-panic-freedom]
level = "deny"
paths = [
    "crates/runtime/src/tcp.rs", # trailing comment
    "crates/runtime/src/remote.rs",
]

[rules.r3-no-wallclock-rng]
level = "warn"
paths = ["crates/routing/src"]
"#,
        )
        .unwrap();
        let r1 = &cfg.rules["r1-panic-freedom"];
        assert_eq!(r1.level, Level::Deny);
        assert_eq!(r1.paths.len(), 2);
        let r3 = &cfg.rules["r3-no-wallclock-rng"];
        assert_eq!(r3.level, Level::Warn);
        assert_eq!(r3.paths, vec!["crates/routing/src".to_string()]);
    }

    #[test]
    fn rejects_unknown_keys_and_sections() {
        assert!(parse("[other.section]\n").is_err());
        assert!(parse("[rules.x]\nbogus = 1\n").is_err());
        assert!(parse("[rules.x]\nlevel = \"fatal\"\n").is_err());
    }
}
