//! Impact analysis for link-failure scenarios.
//!
//! The resilience sweep (`s2::sweep`) enumerates every ≤k link-failure
//! set; most of them cannot change the verification outcome at all,
//! and many of the rest are interchangeable. This module reduces a
//! scenario to its *impact*: which of its failed links the baseline
//! actually forwards over (the **relevant set**), and which prefixes'
//! routing can be perturbed (closed over DPDG components, since a
//! dependent prefix can change whenever its dependee does). Two
//! scenarios with the same relevant set are **impact-equivalent** —
//! failing an unused link alongside a used one adds nothing — so the
//! sweep re-verifies one representative per class and shares the
//! verdict.

use crate::dpdg::Dpdg;
use s2_net::topology::{InterfaceId, Link, NodeId};
use s2_net::Prefix;
use s2_routing::RibSnapshot;
use std::collections::{BTreeMap, BTreeSet};

/// An undirected link as its two ports, normalised (smaller port first)
/// so a link has exactly one key regardless of orientation.
pub type LinkKey = ((NodeId, InterfaceId), (NodeId, InterfaceId));

/// The normalised [`LinkKey`] of a topology link.
pub fn link_key(link: &Link) -> LinkKey {
    if link.a <= link.b {
        (link.a, link.b)
    } else {
        (link.b, link.a)
    }
}

/// Which ports the baseline RIBs forward over, and the prefixes each
/// port serves — the index behind relevant-set reduction.
#[derive(Debug, Clone, Default)]
pub struct LinkUsage {
    by_port: BTreeMap<(NodeId, InterfaceId), BTreeSet<Prefix>>,
}

impl LinkUsage {
    /// Indexes a baseline RIB snapshot: every `(node, egress)` pair of
    /// every route is a used port serving that route's prefix.
    pub fn from_baseline(rib: &RibSnapshot) -> LinkUsage {
        let mut by_port: BTreeMap<(NodeId, InterfaceId), BTreeSet<Prefix>> = BTreeMap::new();
        for (n, routes) in rib.per_node.iter().enumerate() {
            let node = NodeId(n as u32);
            for r in routes {
                for &e in &r.egress {
                    by_port.entry((node, e)).or_default().insert(r.prefix);
                }
            }
        }
        LinkUsage { by_port }
    }

    /// Whether the baseline forwards over either port of `link`.
    pub fn is_used(&self, link: &LinkKey) -> bool {
        self.by_port.contains_key(&link.0) || self.by_port.contains_key(&link.1)
    }

    /// The prefixes whose baseline routes egress over either port of
    /// `link`.
    pub fn link_prefixes(&self, link: &LinkKey) -> BTreeSet<Prefix> {
        let mut out = BTreeSet::new();
        for port in [&link.0, &link.1] {
            if let Some(ps) = self.by_port.get(port) {
                out.extend(ps.iter().copied());
            }
        }
        out
    }

    /// Number of distinct used ports.
    pub fn used_ports(&self) -> usize {
        self.by_port.len()
    }
}

/// A scenario's impact against the baseline: its equivalence class and
/// the prefixes it can perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioImpact {
    /// The failed links the baseline actually uses, sorted — the
    /// impact-equivalence class key. Empty means the scenario cannot
    /// change any verdict (no baseline path crosses a failed link).
    pub relevant: Vec<LinkKey>,
    /// Prefixes whose routing can change, closed over DPDG components.
    pub affected_prefixes: BTreeSet<Prefix>,
}

impl ScenarioImpact {
    /// Whether the scenario provably leaves every verdict at baseline.
    pub fn is_baseline_equivalent(&self) -> bool {
        self.relevant.is_empty()
    }
}

/// Closes `affected` over the weakly connected components of `dpdg`:
/// any component touching the set is absorbed whole, since a dependent
/// prefix can change whenever its dependee does. No-op on an empty set.
///
/// Shared by the sweep's impact classes and the destination-scoped DPV
/// patcher, which both need the same "what else can this perturb"
/// closure before trusting a changed-prefix set.
pub fn close_over_components(affected: &mut BTreeSet<Prefix>, dpdg: &Dpdg) {
    if affected.is_empty() {
        return;
    }
    for component in dpdg.weakly_connected_components() {
        if component.iter().any(|p| affected.contains(p)) {
            affected.extend(component);
        }
    }
}

/// Reduces a failure scenario to its impact: drops links the baseline
/// never forwards over, then closes the surviving links' prefixes over
/// the weakly connected components of `dpdg` (failing a dependee can
/// re-route every prefix in its component).
pub fn scenario_impact(scenario: &[LinkKey], usage: &LinkUsage, dpdg: &Dpdg) -> ScenarioImpact {
    let mut relevant: Vec<LinkKey> = scenario
        .iter()
        .copied()
        .filter(|l| usage.is_used(l))
        .collect();
    relevant.sort();
    relevant.dedup();
    let mut affected: BTreeSet<Prefix> = relevant
        .iter()
        .flat_map(|l| usage.link_prefixes(l))
        .collect();
    close_over_components(&mut affected, dpdg);
    ScenarioImpact {
        relevant,
        affected_prefixes: affected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::policy::Protocol;
    use s2_routing::RibRoute;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn route(prefix: &str, egress: &[u16]) -> RibRoute {
        RibRoute {
            prefix: p(prefix),
            protocol: Protocol::Bgp,
            egress: egress.iter().map(|&i| InterfaceId(i)).collect(),
            is_local: false,
            as_path_len: 1,
        }
    }

    fn key(a: u32, ai: u16, b: u32, bi: u16) -> LinkKey {
        ((NodeId(a), InterfaceId(ai)), (NodeId(b), InterfaceId(bi)))
    }

    /// Node 0 forwards 10.0.0.0/24 out of interface 0 (towards node 1);
    /// the 1—2 link carries nothing.
    fn usage() -> LinkUsage {
        LinkUsage::from_baseline(&RibSnapshot {
            per_node: vec![vec![route("10.0.0.0/24", &[0])], vec![], vec![]],
        })
    }

    fn flat_dpdg(prefixes: &[&str]) -> Dpdg {
        let set: BTreeSet<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        Dpdg::build(&set, &BTreeSet::new())
    }

    #[test]
    fn unused_links_are_baseline_equivalent() {
        let dpdg = flat_dpdg(&["10.0.0.0/24"]);
        let unused = key(1, 1, 2, 0);
        let impact = scenario_impact(&[unused], &usage(), &dpdg);
        assert!(impact.is_baseline_equivalent());
        assert!(impact.affected_prefixes.is_empty());
    }

    #[test]
    fn used_link_contributes_its_prefixes() {
        let dpdg = flat_dpdg(&["10.0.0.0/24"]);
        let used = key(0, 0, 1, 0);
        let impact = scenario_impact(&[used], &usage(), &dpdg);
        assert_eq!(impact.relevant, vec![used]);
        assert_eq!(
            impact.affected_prefixes,
            [p("10.0.0.0/24")].into_iter().collect()
        );
    }

    #[test]
    fn irrelevant_links_do_not_split_the_class() {
        // {used} and {used, unused} must reduce to the same class key.
        let dpdg = flat_dpdg(&["10.0.0.0/24"]);
        let used = key(0, 0, 1, 0);
        let unused = key(1, 1, 2, 0);
        let solo = scenario_impact(&[used], &usage(), &dpdg);
        let padded = scenario_impact(&[used, unused], &usage(), &dpdg);
        assert_eq!(solo.relevant, padded.relevant);
    }

    #[test]
    fn affected_prefixes_close_over_dpdg_components() {
        // 10.0.0.0/16 aggregates 10.0.0.0/24: perturbing the /24 can
        // (de)activate the /16, so both are affected.
        let set: BTreeSet<Prefix> = [p("10.0.0.0/16"), p("10.0.0.0/24"), p("192.168.0.0/24")]
            .into_iter()
            .collect();
        let aggs: BTreeSet<Prefix> = [p("10.0.0.0/16")].into_iter().collect();
        let dpdg = Dpdg::build(&set, &aggs);
        let impact = scenario_impact(&[key(0, 0, 1, 0)], &usage(), &dpdg);
        assert!(impact.affected_prefixes.contains(&p("10.0.0.0/16")));
        assert!(impact.affected_prefixes.contains(&p("10.0.0.0/24")));
        assert!(!impact.affected_prefixes.contains(&p("192.168.0.0/24")));
    }

    #[test]
    fn link_key_is_orientation_invariant() {
        let l = Link {
            a: (NodeId(3), InterfaceId(1)),
            b: (NodeId(1), InterfaceId(2)),
        };
        let r = Link { a: l.b, b: l.a };
        assert_eq!(link_key(&l), link_key(&r));
        assert_eq!(link_key(&l).0 .0, NodeId(1));
    }
}
