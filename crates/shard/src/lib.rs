//! # s2-shard
//!
//! Prefix sharding (§4.5): the memory-bounding mechanism that lets S2
//! simulate networks whose total route count exceeds worker memory.
//!
//! Route computations for different prefixes are *mostly* independent; the
//! exception is prefix dependency — a BGP aggregate activates only when a
//! contributing (more specific) route exists, so the aggregate and all its
//! potential contributors must land in the same shard. The pipeline is:
//!
//! 1. collect every originated prefix ([`collect_prefixes`]),
//! 2. build the directed prefix dependency graph ([`dpdg::Dpdg`]),
//! 3. take weakly connected components,
//! 4. greedily bin the components into `m` shards, largest first, with
//!    equal-sized components shuffled to avoid all shards being dominated
//!    by prefixes from switches on the same worker ([`assign`]),
//! 5. run the fix point once per shard, flushing results in between.
//!
//! The [`plan`] entry point performs 1–4; the verifier and baselines drive
//! step 5.

#![deny(missing_docs)]

pub mod assign;
pub mod dpdg;
pub mod impact;

use s2_net::policy::Protocol;
use s2_net::Prefix;
use s2_routing::SwitchModel;
use std::collections::BTreeSet;

/// The shard schedule: each shard is the set of prefixes whose routes are
/// computed in that round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards, in execution order. Empty shards are dropped.
    pub shards: Vec<BTreeSet<Prefix>>,
}

impl ShardPlan {
    /// A single shard containing every prefix (i.e. sharding disabled).
    pub fn single(prefixes: impl IntoIterator<Item = Prefix>) -> Self {
        ShardPlan {
            shards: vec![prefixes.into_iter().collect()],
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard exists (no prefixes in the network).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total number of prefixes across shards.
    pub fn total_prefixes(&self) -> usize {
        self.shards.iter().map(BTreeSet::len).sum()
    }

    /// The shard index holding `prefix`, if any.
    pub fn shard_of(&self, prefix: Prefix) -> Option<usize> {
        self.shards.iter().position(|s| s.contains(&prefix))
    }

    /// Checks the §7 soundness condition against dependencies observed at
    /// runtime: every `(dependent, dependee)` pair whose prefixes are both
    /// planned must be co-sharded. A dependency on an *unplanned* prefix
    /// is harmless — that prefix is never computed, so its absence is
    /// static and the condition evaluates identically in every shard.
    /// Returns the violating pairs (empty = sound).
    pub fn cross_shard_violations(&self, deps: &[(Prefix, Prefix)]) -> Vec<(Prefix, Prefix)> {
        deps.iter()
            .filter(|(a, b)| match (self.shard_of(*a), self.shard_of(*b)) {
                (Some(sa), Some(sb)) => sa != sb,
                _ => false,
            })
            .copied()
            .collect()
    }

    /// The §7 refinement: returns a new plan where the shards containing
    /// each violating pair are merged (transitively, via union-find over
    /// shard indices). The caller recomputes routes with the new plan.
    pub fn merged_for(&self, violations: &[(Prefix, Prefix)]) -> ShardPlan {
        let n = self.shards.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (a, b) in violations {
            if let (Some(sa), Some(sb)) = (self.shard_of(*a), self.shard_of(*b)) {
                let ra = find(&mut parent, sa);
                let rb = find(&mut parent, sb);
                if ra != rb {
                    parent[ra.max(rb)] = ra.min(rb);
                }
            }
        }
        let mut merged: std::collections::BTreeMap<usize, BTreeSet<Prefix>> =
            std::collections::BTreeMap::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let root = find(&mut parent, i);
            merged.entry(root).or_default().extend(shard.iter().copied());
        }
        ShardPlan {
            shards: merged.into_values().collect(),
        }
    }
}

/// Collects every prefix any switch can originate into BGP, with the
/// protocols involved (per §4.5: self-originated prefixes of each protocol
/// plus prefixes pulled in through redistribution).
pub fn collect_prefixes(switches: &[SwitchModel]) -> BTreeSet<Prefix> {
    let mut out = BTreeSet::new();
    for s in switches {
        for (p, _) in s.originated_prefixes() {
            out.insert(p);
        }
    }
    out
}

/// Collects the aggregate prefixes configured anywhere in the network.
pub fn collect_aggregates(switches: &[SwitchModel]) -> BTreeSet<Prefix> {
    let mut out = BTreeSet::new();
    for s in switches {
        for (p, proto) in s.originated_prefixes() {
            if proto == Protocol::Aggregate {
                out.insert(p);
            }
        }
    }
    out
}

/// Collects the statically declared prefix dependencies (conditional
/// advertisements) of every switch.
pub fn collect_dependencies(switches: &[SwitchModel]) -> Vec<(Prefix, Prefix)> {
    let mut out: Vec<(Prefix, Prefix)> = switches
        .iter()
        .flat_map(SwitchModel::prefix_dependencies)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the shard plan for `switches` with `num_shards` target shards.
/// `seed` drives the equal-size shuffle (fixed seeds keep runs
/// reproducible).
pub fn plan(switches: &[SwitchModel], num_shards: usize, seed: u64) -> ShardPlan {
    let prefixes = collect_prefixes(switches);
    let aggregates = collect_aggregates(switches);
    let deps = collect_dependencies(switches);
    let graph = dpdg::Dpdg::build_with_deps(&prefixes, &aggregates, &deps);
    let components = graph.weakly_connected_components();
    assign::greedy_assign(components, num_shards, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn single_plan_holds_everything() {
        let plan = ShardPlan::single([p("10.0.0.0/24"), p("10.0.1.0/24")]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.total_prefixes(), 2);
        assert_eq!(plan.shard_of(p("10.0.0.0/24")), Some(0));
        assert_eq!(plan.shard_of(p("99.0.0.0/8")), None);
    }

    #[test]
    fn violations_detect_cross_shard_deps() {
        let plan = ShardPlan {
            shards: vec![
                [p("10.0.0.0/16")].into_iter().collect(),
                [p("10.0.1.0/24")].into_iter().collect(),
            ],
        };
        let deps = vec![(p("10.0.0.0/16"), p("10.0.1.0/24"))];
        assert_eq!(plan.cross_shard_violations(&deps).len(), 1);
        let ok_deps = vec![(p("10.0.0.0/16"), p("10.0.0.0/16"))];
        assert!(plan.cross_shard_violations(&ok_deps).is_empty());
        // Unknown prefixes are statically absent: not a violation.
        let unknown = vec![(p("10.0.0.0/16"), p("99.0.0.0/8"))];
        assert!(plan.cross_shard_violations(&unknown).is_empty());
    }

    #[test]
    fn merged_for_unions_violating_shards() {
        let plan = ShardPlan {
            shards: vec![
                [p("10.0.0.0/16")].into_iter().collect(),
                [p("10.0.1.0/24")].into_iter().collect(),
                [p("192.168.0.0/24")].into_iter().collect(),
            ],
        };
        let violations = vec![(p("10.0.0.0/16"), p("10.0.1.0/24"))];
        let merged = plan.merged_for(&violations);
        assert_eq!(merged.len(), 2);
        assert_eq!(
            merged.shard_of(p("10.0.0.0/16")),
            merged.shard_of(p("10.0.1.0/24"))
        );
        assert!(merged.cross_shard_violations(&violations).is_empty());
        assert_eq!(merged.total_prefixes(), 3);
    }
}
