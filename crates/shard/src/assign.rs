//! Greedy shard assignment (§4.5's algorithm): components sorted by
//! descending size, equal sizes shuffled, each component placed on the
//! currently smallest shard.

use crate::ShardPlan;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use s2_net::Prefix;
use std::collections::BTreeSet;

/// Distributes `components` over at most `num_shards` shards. Empty shards
/// are dropped, so fewer shards than requested may come back for tiny
/// inputs.
pub fn greedy_assign(components: Vec<Vec<Prefix>>, num_shards: usize, seed: u64) -> ShardPlan {
    let num_shards = num_shards.max(1);
    let mut components = components;

    // Sort descending by size. Shuffle runs of identical size — without
    // this, components ordered by origin switch dominate shards unevenly
    // across workers (the paper observed exactly this imbalance).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut start = 0;
    while start < components.len() {
        let size = components[start].len();
        let mut end = start;
        while end < components.len() && components[end].len() == size {
            end += 1;
        }
        components[start..end].shuffle(&mut rng);
        start = end;
    }

    let mut shards: Vec<BTreeSet<Prefix>> = vec![BTreeSet::new(); num_shards];
    for cc in components {
        let smallest = shards
            .iter_mut()
            .min_by_key(|s| s.len())
            .expect("num_shards >= 1");
        smallest.extend(cc);
    }
    shards.retain(|s| !s.is_empty());
    ShardPlan { shards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s2_net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn singleton_components_spread_evenly() {
        let components: Vec<Vec<Prefix>> = (0..8)
            .map(|i| vec![Prefix::new(Ipv4Addr::new(10, i, 0, 0), 24)])
            .collect();
        let plan = greedy_assign(components, 4, 1);
        assert_eq!(plan.len(), 4);
        for s in &plan.shards {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn large_component_stays_together() {
        let big: Vec<Prefix> = (0..5)
            .map(|i| Prefix::new(Ipv4Addr::new(10, 0, i, 0), 24))
            .collect();
        let small = vec![p("192.168.0.0/24")];
        let plan = greedy_assign(vec![big.clone(), small], 2, 7);
        assert_eq!(plan.len(), 2);
        let big_shard = plan.shard_of(big[0]).unwrap();
        for q in &big {
            assert_eq!(plan.shard_of(*q), Some(big_shard));
        }
        assert_ne!(plan.shard_of(p("192.168.0.0/24")).unwrap(), big_shard);
    }

    #[test]
    fn empty_shards_are_dropped() {
        let plan = greedy_assign(vec![vec![p("10.0.0.0/24")]], 16, 0);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn shuffle_is_seeded_and_effective() {
        let components: Vec<Vec<Prefix>> = (0..32)
            .map(|i| vec![Prefix::new(Ipv4Addr::new(10, i, 0, 0), 24)])
            .collect();
        let p1 = greedy_assign(components.clone(), 4, 11);
        let p2 = greedy_assign(components.clone(), 4, 11);
        assert_eq!(p1, p2, "same seed must reproduce");
        let p3 = greedy_assign(components, 4, 12);
        assert_ne!(p1, p3, "different seed should shuffle differently");
    }

    proptest! {
        /// No prefix is lost or duplicated, and shard sizes are balanced
        /// within the largest component size.
        #[test]
        fn prop_exact_cover_and_balance(
            sizes in proptest::collection::vec(1usize..6, 1..20),
            num_shards in 1usize..8,
            seed in any::<u64>(),
        ) {
            let mut next = 0u32;
            let components: Vec<Vec<Prefix>> = sizes
                .iter()
                .map(|&s| {
                    (0..s)
                        .map(|_| {
                            next += 1;
                            Prefix::new(Ipv4Addr(next << 8), 24)
                        })
                        .collect()
                })
                .collect();
            let total: usize = sizes.iter().sum();
            let max_cc = *sizes.iter().max().unwrap();
            let plan = greedy_assign(components, num_shards, seed);
            prop_assert_eq!(plan.total_prefixes(), total);
            // Greedy bound: max shard ≤ min shard + largest component.
            let lens: Vec<usize> = plan.shards.iter().map(BTreeSet::len).collect();
            let max = *lens.iter().max().unwrap();
            let min = *lens.iter().min().unwrap();
            prop_assert!(max <= min + max_cc, "lens={lens:?} max_cc={max_cc}");
        }
    }
}
