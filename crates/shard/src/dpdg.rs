//! The directed prefix dependency graph (DPDG).
//!
//! Nodes are prefixes; an edge `a → b` means the computation of `a`'s
//! routes depends on `b`'s — in our model, `a` is an aggregate whose
//! activation requires a contributing (strictly more specific) prefix `b`.
//! Only weak connectivity matters for sharding, but the direction is kept
//! for diagnostics and for the runtime dependency re-check.

use s2_net::{Prefix, PrefixTrie};
use std::collections::BTreeSet;

/// The dependency graph over a set of prefixes.
#[derive(Debug, Clone)]
pub struct Dpdg {
    /// All prefixes, sorted (index = node id).
    pub prefixes: Vec<Prefix>,
    /// Directed edges as (from, to) index pairs, `from` depends on `to`.
    pub edges: Vec<(usize, usize)>,
}

impl Dpdg {
    /// Builds the graph: for every aggregate prefix, add an edge to each
    /// strictly more specific prefix it covers.
    pub fn build(prefixes: &BTreeSet<Prefix>, aggregates: &BTreeSet<Prefix>) -> Self {
        Self::build_with_deps(prefixes, aggregates, &[])
    }

    /// Like [`build`](Self::build), plus explicit `(dependent, dependee)`
    /// edges — conditional advertisements gate one prefix on another
    /// without any coverage relationship. Pairs referencing prefixes
    /// outside the set are ignored (an unoriginated condition prefix is
    /// statically absent, so no co-sharding is needed).
    pub fn build_with_deps(
        prefixes: &BTreeSet<Prefix>,
        aggregates: &BTreeSet<Prefix>,
        deps: &[(Prefix, Prefix)],
    ) -> Self {
        let prefixes: Vec<Prefix> = prefixes.iter().copied().collect();
        let trie: PrefixTrie<usize> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i))
            .collect();
        let mut edges = Vec::new();
        for agg in aggregates {
            let Some(from) = trie.get(*agg).copied() else { continue };
            trie.for_each_covered(*agg, |p, &to| {
                if p != *agg {
                    edges.push((from, to));
                }
            });
        }
        for (a, b) in deps {
            if let (Some(&from), Some(&to)) = (trie.get(*a), trie.get(*b)) {
                if from != to {
                    edges.push((from, to));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Dpdg { prefixes, edges }
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Computes the weakly connected components as sorted prefix groups,
    /// using union–find. Components come out in a deterministic order
    /// (sorted by their smallest member).
    pub fn weakly_connected_components(&self) -> Vec<Vec<Prefix>> {
        let n = self.prefixes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in &self.edges {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<Prefix>> =
            std::collections::BTreeMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.prefixes[i]);
        }
        groups
            .into_values()
            .map(|mut g| {
                g.sort();
                g
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s2_net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn set(items: &[&str]) -> BTreeSet<Prefix> {
        items.iter().map(|s| p(s)).collect()
    }

    #[test]
    fn no_aggregates_means_no_edges() {
        let g = Dpdg::build(&set(&["10.0.0.0/24", "10.0.1.0/24"]), &BTreeSet::new());
        assert!(g.edges.is_empty());
        let ccs = g.weakly_connected_components();
        assert_eq!(ccs.len(), 2);
    }

    #[test]
    fn aggregate_links_contributors() {
        let prefixes = set(&["10.0.0.0/16", "10.0.1.0/24", "10.0.2.0/24", "192.168.0.0/24"]);
        let aggs = set(&["10.0.0.0/16"]);
        let g = Dpdg::build(&prefixes, &aggs);
        assert_eq!(g.edges.len(), 2);
        let ccs = g.weakly_connected_components();
        assert_eq!(ccs.len(), 2);
        // The 10/16 family forms one component.
        let family: Vec<Prefix> = vec![p("10.0.0.0/16"), p("10.0.1.0/24"), p("10.0.2.0/24")];
        assert!(ccs.contains(&family));
        assert!(ccs.contains(&vec![p("192.168.0.0/24")]));
    }

    #[test]
    fn nested_aggregates_chain_into_one_component() {
        let prefixes = set(&["10.0.0.0/8", "10.1.0.0/16", "10.1.1.0/24"]);
        let aggs = set(&["10.0.0.0/8", "10.1.0.0/16"]);
        let g = Dpdg::build(&prefixes, &aggs);
        let ccs = g.weakly_connected_components();
        assert_eq!(ccs.len(), 1);
        assert_eq!(ccs[0].len(), 3);
    }

    #[test]
    fn aggregate_not_in_prefix_set_is_ignored() {
        let prefixes = set(&["10.0.1.0/24"]);
        let aggs = set(&["10.0.0.0/16"]); // not an originated prefix
        let g = Dpdg::build(&prefixes, &aggs);
        assert!(g.edges.is_empty());
    }

    proptest! {
        /// Components partition the prefix set exactly.
        #[test]
        fn prop_components_partition(
            addrs in proptest::collection::btree_set((any::<u32>(), 8u8..=30), 1..50),
            agg_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
        ) {
            let prefixes: BTreeSet<Prefix> = addrs
                .iter()
                .map(|(a, l)| Prefix::new(Ipv4Addr(*a), *l))
                .collect();
            let plist: Vec<Prefix> = prefixes.iter().copied().collect();
            let aggs: BTreeSet<Prefix> = agg_picks
                .iter()
                .map(|i| plist[i.index(plist.len())])
                .collect();
            let g = Dpdg::build(&prefixes, &aggs);
            let ccs = g.weakly_connected_components();
            let mut all: Vec<Prefix> = ccs.into_iter().flatten().collect();
            all.sort();
            let expect: Vec<Prefix> = prefixes.into_iter().collect();
            prop_assert_eq!(all, expect);
        }

        /// Every aggregate ends up in the same component as everything it
        /// covers.
        #[test]
        fn prop_aggregate_cosharded_with_contributors(
            addrs in proptest::collection::btree_set((any::<u32>(), 8u8..=30), 2..40,),
        ) {
            let prefixes: BTreeSet<Prefix> = addrs
                .iter()
                .map(|(a, l)| Prefix::new(Ipv4Addr(*a), *l))
                .collect();
            // Use the shortest prefix as the aggregate.
            let agg = *prefixes.iter().min_by_key(|p| p.len()).unwrap();
            let aggs: BTreeSet<Prefix> = [agg].into_iter().collect();
            let g = Dpdg::build(&prefixes, &aggs);
            let ccs = g.weakly_connected_components();
            let agg_cc = ccs.iter().find(|cc| cc.contains(&agg)).unwrap();
            for q in &prefixes {
                if agg.covers(*q) {
                    prop_assert!(agg_cc.contains(q), "{q} not with {agg}");
                }
            }
        }
    }
}
