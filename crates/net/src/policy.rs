//! Routing policy model: route maps, prefix lists and communities.
//!
//! The structures here are the vendor-*independent* form; the vendor
//! dialects in [`crate::vendor`] parse into these. Evaluation lives in the
//! routing crate (`s2-routing::policy_eval`) so this crate stays a passive
//! data model.

use crate::ip::Prefix;
use serde::{Deserialize, Serialize};

/// A BGP community value, stored as `(high << 16) | low`.
pub type Community = u32;

/// Builds a community from its conventional `high:low` notation.
pub const fn community(high: u16, low: u16) -> Community {
    ((high as u32) << 16) | low as u32
}

/// Formats a community as `high:low`.
pub fn community_string(c: Community) -> String {
    format!("{}:{}", c >> 16, c & 0xffff)
}

/// Whether a route-map clause permits or denies matching routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteMapDisposition {
    /// Matching routes are accepted (after applying the clause's actions).
    Permit,
    /// Matching routes are rejected.
    Deny,
}

/// A single entry of a prefix list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixListEntry {
    /// The prefix to match against.
    pub prefix: Prefix,
    /// Minimum matched length (`ge`); defaults to the prefix's own length.
    pub ge: Option<u8>,
    /// Maximum matched length (`le`); defaults to the prefix's own length.
    pub le: Option<u8>,
    /// Permit or deny on match.
    pub permit: bool,
}

impl PrefixListEntry {
    /// Whether `p` matches this entry (ignoring the permit/deny bit).
    pub fn matches(&self, p: Prefix) -> bool {
        let ge = self.ge.unwrap_or(self.prefix.len());
        let le = self.le.unwrap_or_else(|| self.ge.map_or(self.prefix.len(), |_| 32));
        self.prefix.covers(p) && p.len() >= ge && p.len() <= le
    }
}

/// A named ordered prefix list. First matching entry wins; no match ⇒ deny.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefixList {
    /// Entries in configuration order.
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// Evaluates the list against `p`: `true` = permitted.
    pub fn permits(&self, p: Prefix) -> bool {
        for e in &self.entries {
            if e.matches(p) {
                return e.permit;
            }
        }
        false
    }
}

/// Conditions a route-map clause can match on. A clause matches when **all**
/// of its conditions hold (Cisco-style AND semantics within a clause).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchCondition {
    /// Route's prefix is permitted by the named prefix list.
    PrefixList(String),
    /// Route carries the given community.
    Community(Community),
    /// Route's AS path contains the given ASN anywhere.
    AsPathContains(u32),
    /// Route's AS path is empty (locally originated).
    AsPathEmpty,
    /// Route's prefix length falls in `[min, max]`.
    PrefixLenRange(u8, u8),
    /// Route was learned from the given protocol (used by redistribution
    /// filters).
    Protocol(Protocol),
}

/// How `remove-private-as` interprets the AS path.
///
/// This is the vendor-specific behaviour the paper calls out (§2.1): some
/// vendors remove *all* private ASNs, others only the private ASNs
/// *preceding the first non-private one*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovePrivateAsMode {
    /// Remove every private ASN in the path.
    All,
    /// Remove only the leading run of private ASNs.
    LeadingOnly,
}

/// Actions on the AS path attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsPathAction {
    /// Prepend `asn` `count` times.
    Prepend {
        /// ASN to prepend.
        asn: u32,
        /// Number of copies.
        count: u8,
    },
    /// Replace the entire path with the given sequence (the paper's DCN uses
    /// this to overwrite matched paths with the device's own ASN, §2.3).
    Overwrite(Vec<u32>),
    /// Strip private ASNs according to the vendor's semantics.
    RemovePrivate(RemovePrivateAsMode),
}

/// Actions on the community set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommunityAction {
    /// Add a community.
    Add(Community),
    /// Remove a community if present.
    Delete(Community),
    /// Clear all communities, then add the listed ones.
    Set(Vec<Community>),
}

/// A `set` action applied by a permitting clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Set LOCAL_PREF.
    SetLocalPref(u32),
    /// Set MED (metric).
    SetMed(u32),
    /// Modify the AS path.
    AsPath(AsPathAction),
    /// Modify communities.
    Community(CommunityAction),
}

/// One numbered clause of a route map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteMapClause {
    /// Sequence number; clauses are evaluated in ascending order.
    pub seq: u32,
    /// Permit or deny.
    pub disposition: RouteMapDisposition,
    /// All conditions must match (an empty list matches everything).
    pub matches: Vec<MatchCondition>,
    /// Actions applied when a `Permit` clause matches.
    pub actions: Vec<PolicyAction>,
}

/// A named route map: an ordered list of clauses. The first matching clause
/// decides; if no clause matches the route is denied (Cisco semantics).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouteMap {
    /// Clauses sorted by sequence number.
    pub clauses: Vec<RouteMapClause>,
}

impl RouteMap {
    /// A route map with a single unconditional permit clause.
    pub fn permit_all() -> Self {
        RouteMap {
            clauses: vec![RouteMapClause {
                seq: 10,
                disposition: RouteMapDisposition::Permit,
                matches: Vec::new(),
                actions: Vec::new(),
            }],
        }
    }

    /// Adds a clause, keeping clauses sorted by sequence number.
    pub fn push_clause(&mut self, clause: RouteMapClause) {
        self.clauses.push(clause);
        self.clauses.sort_by_key(|c| c.seq);
    }
}

/// Routing protocols a route can originate from; used for administrative
/// distance and redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// Directly connected interface subnet.
    Connected,
    /// Statically configured route.
    Static,
    /// Learned via OSPF.
    Ospf,
    /// Learned via BGP.
    Bgp,
    /// Created by BGP route aggregation.
    Aggregate,
}

impl Protocol {
    /// Administrative distance: lower is preferred when the same prefix is
    /// offered by multiple protocols (Cisco defaults).
    pub const fn admin_distance(self) -> u8 {
        match self {
            Protocol::Connected => 0,
            Protocol::Static => 1,
            Protocol::Bgp => 20,      // eBGP
            Protocol::Ospf => 110,
            Protocol::Aggregate => 200,
        }
    }
}

/// The private ASN range (RFC 6996 16-bit block).
pub const fn is_private_asn(asn: u32) -> bool {
    (asn >= 64512 && asn <= 65534) || (asn >= 4_200_000_000 && asn <= 4_294_967_294)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn community_packing() {
        let c = community(65000, 42);
        assert_eq!(c, 0xFDE8_002A);
        assert_eq!(community_string(c), "65000:42");
    }

    #[test]
    fn prefix_list_entry_exact_match() {
        let e = PrefixListEntry {
            prefix: p("10.0.0.0/8"),
            ge: None,
            le: None,
            permit: true,
        };
        assert!(e.matches(p("10.0.0.0/8")));
        assert!(!e.matches(p("10.1.0.0/16")));
        assert!(!e.matches(p("11.0.0.0/8")));
    }

    #[test]
    fn prefix_list_entry_le_ge() {
        let e = PrefixListEntry {
            prefix: p("10.0.0.0/8"),
            ge: Some(16),
            le: Some(24),
            permit: true,
        };
        assert!(!e.matches(p("10.0.0.0/8")));
        assert!(e.matches(p("10.1.0.0/16")));
        assert!(e.matches(p("10.1.2.0/24")));
        assert!(!e.matches(p("10.1.2.0/25")));
    }

    #[test]
    fn ge_without_le_extends_to_32() {
        let e = PrefixListEntry {
            prefix: p("10.0.0.0/8"),
            ge: Some(9),
            le: None,
            permit: true,
        };
        assert!(e.matches(p("10.1.2.3/32")));
        assert!(!e.matches(p("10.0.0.0/8")));
    }

    #[test]
    fn prefix_list_first_match_wins_and_default_deny() {
        let pl = PrefixList {
            entries: vec![
                PrefixListEntry {
                    prefix: p("10.1.0.0/16"),
                    ge: None,
                    le: None,
                    permit: false,
                },
                PrefixListEntry {
                    prefix: p("10.0.0.0/8"),
                    ge: Some(8),
                    le: Some(32),
                    permit: true,
                },
            ],
        };
        assert!(!pl.permits(p("10.1.0.0/16"))); // hits the deny first
        assert!(pl.permits(p("10.2.0.0/16")));
        assert!(!pl.permits(p("192.168.0.0/16"))); // no match => deny
    }

    #[test]
    fn route_map_clauses_stay_sorted() {
        let mut rm = RouteMap::default();
        for seq in [30, 10, 20] {
            rm.push_clause(RouteMapClause {
                seq,
                disposition: RouteMapDisposition::Permit,
                matches: vec![],
                actions: vec![],
            });
        }
        let seqs: Vec<u32> = rm.clauses.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![10, 20, 30]);
    }

    #[test]
    fn admin_distances_are_ordered_sensibly() {
        assert!(Protocol::Connected.admin_distance() < Protocol::Static.admin_distance());
        assert!(Protocol::Static.admin_distance() < Protocol::Bgp.admin_distance());
        assert!(Protocol::Bgp.admin_distance() < Protocol::Ospf.admin_distance());
    }

    #[test]
    fn private_asn_ranges() {
        assert!(is_private_asn(64512));
        assert!(is_private_asn(65534));
        assert!(!is_private_asn(65535));
        assert!(!is_private_asn(64511));
        assert!(is_private_asn(4_200_000_000));
        assert!(!is_private_asn(4_294_967_295));
    }
}
