//! The physical topology graph: nodes (switches), interfaces and links.
//!
//! Node identity is a dense integer [`NodeId`] assigned in insertion order;
//! every other crate (partitioner, runtime, data plane) indexes its arrays
//! with it. Hostnames are kept for diagnostics and for the vendor parsers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a switch in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Identifier of an interface (port) local to a node.
///
/// Interface indices are dense per node; `(NodeId, InterfaceId)` globally
/// identifies a port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterfaceId(pub u16);

impl InterfaceId {
    /// The id as a usable array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl fmt::Debug for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An undirected point-to-point link between two ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: (NodeId, InterfaceId),
    /// The other endpoint.
    pub b: (NodeId, InterfaceId),
}

impl Link {
    /// Given one endpoint's node, returns `(local interface, remote node,
    /// remote interface)`, or `None` if `node` is not an endpoint.
    pub fn from_node(&self, node: NodeId) -> Option<(InterfaceId, NodeId, InterfaceId)> {
        if self.a.0 == node {
            Some((self.a.1, self.b.0, self.b.1))
        } else if self.b.0 == node {
            Some((self.b.1, self.a.0, self.a.1))
        } else {
            None
        }
    }
}

/// The network topology: a set of named nodes and point-to-point links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    links: Vec<Link>,
    /// `adjacency[n]` lists `(local ifid, peer node, peer ifid)` for node n.
    adjacency: Vec<Vec<(InterfaceId, NodeId, InterfaceId)>>,
    /// Number of interfaces allocated on each node.
    if_counts: Vec<u16>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node; returns its id. Adding an existing name returns the
    /// existing id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = NodeId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.adjacency.push(Vec::new());
        self.if_counts.push(0);
        id
    }

    /// Allocates a fresh interface on `node`.
    pub fn add_interface(&mut self, node: NodeId) -> InterfaceId {
        let c = &mut self.if_counts[node.index()];
        let id = InterfaceId(*c);
        *c += 1;
        id
    }

    /// Connects two nodes with a new link, allocating one interface on each
    /// side. Returns the link.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> Link {
        let ia = self.add_interface(a);
        let ib = self.add_interface(b);
        let link = Link {
            a: (a, ia),
            b: (b, ib),
        };
        self.links.push(link);
        self.adjacency[a.index()].push((ia, b, ib));
        self.adjacency[b.index()].push((ib, a, ia));
        link
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The hostname of `node`.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Looks a node up by hostname.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Neighbors of `node` as `(local ifid, peer, peer ifid)` triples, in
    /// link insertion order (deterministic).
    pub fn neighbors(&self, node: NodeId) -> &[(InterfaceId, NodeId, InterfaceId)] {
        &self.adjacency[node.index()]
    }

    /// Degree (number of links) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Number of interfaces allocated on `node`.
    pub fn interface_count(&self, node: NodeId) -> u16 {
        self.if_counts[node.index()]
    }

    /// The peer `(node, interface)` reached by leaving `node` through
    /// `ifid`, or `None` if the interface is unconnected.
    pub fn peer_of(&self, node: NodeId, ifid: InterfaceId) -> Option<(NodeId, InterfaceId)> {
        self.adjacency[node.index()]
            .iter()
            .find(|(local, _, _)| *local == ifid)
            .map(|&(_, peer, pif)| (peer, pif))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_is_idempotent() {
        let mut t = Topology::new();
        let a = t.add_node("leaf0");
        let b = t.add_node("leaf0");
        assert_eq!(a, b);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.name(a), "leaf0");
        assert_eq!(t.node_by_name("leaf0"), Some(a));
        assert_eq!(t.node_by_name("nope"), None);
    }

    #[test]
    fn connect_builds_symmetric_adjacency() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l = t.connect(a, b);
        t.connect(a, c);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.degree(a), 2);
        assert_eq!(t.degree(b), 1);
        assert_eq!(t.neighbors(b)[0].1, a);
        assert_eq!(l.from_node(a).unwrap().1, b);
        assert_eq!(l.from_node(b).unwrap().1, a);
        assert_eq!(l.from_node(c), None);
    }

    #[test]
    fn interfaces_are_dense_per_node() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.connect(a, b);
        t.connect(a, b); // parallel link
        assert_eq!(t.interface_count(a), 2);
        assert_eq!(t.interface_count(b), 2);
        let (ifa0, peer, pif) = t.neighbors(a)[0];
        assert_eq!((ifa0, peer, pif), (InterfaceId(0), b, InterfaceId(0)));
        assert_eq!(t.peer_of(a, InterfaceId(1)), Some((b, InterfaceId(1))));
        assert_eq!(t.peer_of(a, InterfaceId(9)), None);
    }

    #[test]
    fn nodes_iterates_in_insertion_order() {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..5).map(|i| t.add_node(format!("n{i}"))).collect();
        assert_eq!(t.nodes().collect::<Vec<_>>(), ids);
    }
}
