//! Error types shared by the network-model crate.

use std::fmt;

/// Errors produced while parsing addresses, prefixes or vendor
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An IPv4 address literal could not be parsed.
    BadAddress(String),
    /// A prefix literal (`a.b.c.d/len`) could not be parsed.
    BadPrefix(String),
    /// A vendor configuration line was syntactically invalid.
    Syntax {
        /// 1-based line number within the configuration file.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A vendor configuration referenced an undefined object (route map,
    /// prefix list, ACL, ...).
    UndefinedReference {
        /// The kind of object (e.g. `"route-map"`).
        kind: &'static str,
        /// The missing object's name.
        name: String,
    },
    /// The configuration is structurally inconsistent (duplicate hostname,
    /// interface collision, ...).
    Inconsistent(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            NetError::BadPrefix(s) => write!(f, "invalid IPv4 prefix: {s:?}"),
            NetError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            NetError::UndefinedReference { kind, name } => {
                write!(f, "undefined {kind} {name:?}")
            }
            NetError::Inconsistent(msg) => write!(f, "inconsistent configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            NetError::BadAddress("1.2.3".into()).to_string(),
            "invalid IPv4 address: \"1.2.3\""
        );
        assert_eq!(
            NetError::Syntax {
                line: 7,
                message: "unexpected token".into()
            }
            .to_string(),
            "syntax error at line 7: unexpected token"
        );
        assert_eq!(
            NetError::UndefinedReference {
                kind: "route-map",
                name: "RM".into()
            }
            .to_string(),
            "undefined route-map \"RM\""
        );
    }
}
