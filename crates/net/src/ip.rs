//! IPv4 addresses and prefixes.
//!
//! The verifier only reasons about IPv4 (the paper's prototype likewise
//! "now only supports IPv4", §7). Addresses are a thin `u32` newtype so they
//! can be used as BDD bit-vectors and trie keys without conversion cost.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Implements `Debug` by delegating to `Display`; keeps diagnostic dumps of
/// routing state readable.
macro_rules! fmt_debug_as_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(self, f)
        }
    };
}

/// An IPv4 address stored in host byte order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Builds an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns the value of bit `i`, where bit 0 is the most significant.
    ///
    /// This is the bit order used by prefix tries and by the BDD encoding of
    /// destination addresses.
    #[inline]
    pub const fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.0 >> (31 - i)) & 1 == 1
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fmt_debug_as_display!();
}

impl FromStr for Ipv4Addr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| NetError::BadAddress(s.into()))?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(NetError::BadAddress(s.into()));
            }
            *slot = part
                .parse::<u8>()
                .map_err(|_| NetError::BadAddress(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(NetError::BadAddress(s.into()));
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 prefix: an address plus a mask length, always stored normalized
/// (host bits zeroed) so that equal prefixes compare equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// Builds a prefix, zeroing any bits beyond `len`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: Ipv4Addr(addr.0 & mask(len)),
            len,
        }
    }

    /// A /32 host prefix for `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    /// The network address (host bits are always zero).
    pub const fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The mask length in bits.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32` (e.g. `/24` → `0xffff_ff00`).
    pub const fn netmask(self) -> u32 {
        mask(self.len)
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub const fn contains_addr(self, addr: Ipv4Addr) -> bool {
        (addr.0 & mask(self.len)) == self.addr.0
    }

    /// Whether `other` is fully covered by `self` (i.e. `self` is equal or
    /// less specific). Every prefix covers itself.
    #[inline]
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && (other.addr.0 & mask(self.len)) == self.addr.0
    }

    /// Whether the two prefixes share any address.
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The first (lowest) address in the prefix.
    pub const fn first_addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The last (highest) address in the prefix.
    pub const fn last_addr(self) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | !mask(self.len))
    }

    /// The immediate parent prefix (one bit shorter), or `None` for `/0`.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// Returns the value of bit `i` of the network address (bit 0 = MSB).
    #[inline]
    pub const fn bit(self, i: u8) -> bool {
        self.addr.bit(i)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fmt_debug_as_display!();
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| NetError::BadPrefix(s.into()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| NetError::BadPrefix(s.into()))?;
        let len: u8 = len.parse().map_err(|_| NetError::BadPrefix(s.into()))?;
        if len > 32 {
            return Err(NetError::BadPrefix(s.into()));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// The netmask with `len` leading one bits.
#[inline]
const fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_roundtrip() {
        let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(a, Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(a.to_string(), "10.1.2.3");
        assert_eq!(a.octets(), [10, 1, 2, 3]);
    }

    #[test]
    fn address_rejects_garbage() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "01x.0.0.0"] {
            assert!(bad.parse::<Ipv4Addr>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn address_bits_msb_first() {
        let a = Ipv4Addr::new(0b1000_0000, 0, 0, 1);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p, "10.1.0.0/16".parse().unwrap());
    }

    #[test]
    fn prefix_rejects_garbage() {
        for bad in ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/8", "10.0.0.0/"] {
            assert!(bad.parse::<Prefix>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn covers_and_overlaps() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Prefix = "10.2.0.0/16".parse().unwrap();
        assert!(p16.covers(p24));
        assert!(!p24.covers(p16));
        assert!(p16.covers(p16));
        assert!(p16.overlaps(p24) && p24.overlaps(p16));
        assert!(!p16.overlaps(other));
        assert!(Prefix::DEFAULT.covers(p16));
    }

    #[test]
    fn contains_addr_honours_mask() {
        let p: Prefix = "192.168.4.0/22".parse().unwrap();
        assert!(p.contains_addr("192.168.7.255".parse().unwrap()));
        assert!(!p.contains_addr("192.168.8.0".parse().unwrap()));
    }

    #[test]
    fn first_last_parent() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.first_addr().to_string(), "10.1.2.0");
        assert_eq!(p.last_addr().to_string(), "10.1.2.255");
        assert_eq!(p.parent().unwrap().to_string(), "10.1.2.0/23");
        assert_eq!(Prefix::DEFAULT.parent(), None);
        assert_eq!(Prefix::DEFAULT.last_addr(), Ipv4Addr(u32::MAX));
    }

    #[test]
    fn host_prefix_is_slash_32() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let p = Prefix::host(a);
        assert_eq!(p.len(), 32);
        assert!(p.contains_addr(a));
        assert_eq!(p.first_addr(), p.last_addr());
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(bits in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new(Ipv4Addr(bits), len);
            let back: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_covers_iff_range_subset(a in any::<u32>(), la in 0u8..=32,
                                        b in any::<u32>(), lb in 0u8..=32) {
            let pa = Prefix::new(Ipv4Addr(a), la);
            let pb = Prefix::new(Ipv4Addr(b), lb);
            let range_subset = pa.first_addr() <= pb.first_addr()
                && pb.last_addr() <= pa.last_addr();
            prop_assert_eq!(pa.covers(pb), range_subset);
        }

        #[test]
        fn prop_contains_matches_range(a in any::<u32>(), len in 0u8..=32, x in any::<u32>()) {
            let p = Prefix::new(Ipv4Addr(a), len);
            let inside = p.first_addr().0 <= x && x <= p.last_addr().0;
            prop_assert_eq!(p.contains_addr(Ipv4Addr(x)), inside);
        }
    }
}
