//! The vendor-independent (VI) device configuration model.
//!
//! This is the S2 analogue of Batfish's vendor-independent representation:
//! every vendor dialect parses into a [`DeviceConfig`], and everything
//! downstream (partitioning, control plane simulation, data plane
//! verification) consumes only this model.

use crate::acl::Acl;
use crate::error::NetError;
use crate::ip::{Ipv4Addr, Prefix};
use crate::policy::{Community, PrefixList, Protocol, RemovePrivateAsMode, RouteMap};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The vendor dialect a configuration was written in. Each vendor carries
/// its own vendor-specific behaviours (VSBs); see [`VendorQuirks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Synthetic "vendor A" dialect (IOS-flavoured).
    A,
    /// Synthetic "vendor B" dialect (JunOS-flavoured).
    B,
}

/// Vendor-specific behaviours that change protocol semantics (not just
/// syntax). The paper reports 30% of a large provider's incidents stem from
/// such differences (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VendorQuirks {
    /// `remove-private-as` semantics.
    pub remove_private_as: RemovePrivateAsMode,
    /// Whether routes with an empty AS path coming from an eBGP peer are
    /// accepted (vendor B rejects them as malformed).
    pub accept_empty_ebgp_as_path: bool,
}

impl Vendor {
    /// The semantic quirks of this vendor.
    pub const fn quirks(self) -> VendorQuirks {
        match self {
            Vendor::A => VendorQuirks {
                remove_private_as: RemovePrivateAsMode::All,
                accept_empty_ebgp_as_path: true,
            },
            Vendor::B => VendorQuirks {
                remove_private_as: RemovePrivateAsMode::LeadingOnly,
                accept_empty_ebgp_as_path: false,
            },
        }
    }
}

/// Configuration of a single interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceConfig {
    /// Interface name (e.g. `eth0`); unique per device.
    pub name: String,
    /// Interface address and subnet, e.g. `10.0.0.1/31`.
    pub prefix: Prefix,
    /// The concrete interface address (the host part of `prefix`).
    pub addr: Ipv4Addr,
    /// Name of the inbound ACL, if any.
    pub acl_in: Option<String>,
    /// Name of the outbound ACL, if any.
    pub acl_out: Option<String>,
    /// OSPF cost if OSPF runs on this interface.
    pub ospf_cost: Option<u32>,
}

impl InterfaceConfig {
    /// A bare interface with just a name and address.
    pub fn new(name: impl Into<String>, addr: Ipv4Addr, masklen: u8) -> Self {
        InterfaceConfig {
            name: name.into(),
            prefix: Prefix::new(addr, masklen),
            addr,
            acl_in: None,
            acl_out: None,
            ospf_cost: None,
        }
    }
}

/// A `network` statement: a prefix the device originates into BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// The originated prefix.
    pub prefix: Prefix,
}

/// A BGP aggregate (`aggregate-address`) definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The aggregate prefix.
    pub prefix: Prefix,
    /// If true, contributing (more specific) routes are suppressed from
    /// advertisements.
    pub summary_only: bool,
    /// Communities attached to the aggregate route (the paper's DCN tags
    /// aggregates for filtering at the top layer, §2.3).
    pub communities: Vec<Community>,
}

/// A conditional advertisement (Cisco `advertise-map`/`exist-map` style):
/// routes for `advertise` are exported only while the condition on
/// `condition` holds in the local RIB. This is the second source of
/// prefix dependency the S2 paper's sharding must respect (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConditionalAdvertisement {
    /// The prefix whose advertisement is gated.
    pub advertise: Prefix,
    /// The prefix whose presence/absence is tested.
    pub condition: Prefix,
    /// `true` = advertise while `condition` is present (exist-map);
    /// `false` = advertise while it is absent (non-exist-map).
    pub when_present: bool,
}

/// One BGP neighbor (session endpoint).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpNeighbor {
    /// The neighbor's interface address.
    pub peer: Ipv4Addr,
    /// The neighbor's ASN.
    pub remote_as: u32,
    /// Route map applied to routes received from this neighbor.
    pub import_policy: Option<String>,
    /// Route map applied to routes advertised to this neighbor.
    pub export_policy: Option<String>,
    /// Strip private ASNs from outbound advertisements (semantics depend on
    /// [`VendorQuirks::remove_private_as`]).
    pub remove_private_as: bool,
}

/// The device's BGP process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpProcess {
    /// Local autonomous system number.
    pub asn: u32,
    /// Router id used as the final tie-break in best-path selection.
    pub router_id: Ipv4Addr,
    /// Prefixes originated via `network` statements.
    pub networks: Vec<Network>,
    /// Aggregates.
    pub aggregates: Vec<Aggregate>,
    /// Sessions.
    pub neighbors: Vec<BgpNeighbor>,
    /// Conditional advertisements (apply to exports on every session).
    pub conditional: Vec<ConditionalAdvertisement>,
    /// Maximum number of equal-cost multipath next hops installed.
    pub max_ecmp: u8,
    /// Protocols redistributed into BGP.
    pub redistribute: Vec<Protocol>,
}

impl BgpProcess {
    /// A minimal process with no sessions.
    pub fn new(asn: u32, router_id: Ipv4Addr) -> Self {
        BgpProcess {
            asn,
            router_id,
            networks: Vec::new(),
            aggregates: Vec::new(),
            neighbors: Vec::new(),
            conditional: Vec::new(),
            max_ecmp: 1,
            redistribute: Vec::new(),
        }
    }
}

/// The device's OSPF process (single area 0 model).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfProcess {
    /// Interfaces OSPF runs on (must exist in [`DeviceConfig::interfaces`]).
    pub interfaces: Vec<String>,
    /// Reference bandwidth-independent default cost for interfaces without
    /// an explicit `ospf_cost`.
    pub default_cost: u32,
}

/// A static route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop address (must be reachable via a connected subnet) or
    /// `None` for a discard (null0) route.
    pub next_hop: Option<Ipv4Addr>,
}

/// The complete vendor-independent configuration of one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Hostname; unique across the network and used to bind configurations
    /// to topology nodes.
    pub hostname: String,
    /// The originating vendor (decides semantic quirks).
    pub vendor: Vendor,
    /// Interfaces in configuration order.
    pub interfaces: Vec<InterfaceConfig>,
    /// Named route maps.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Named prefix lists.
    pub prefix_lists: BTreeMap<String, PrefixList>,
    /// Named ACLs.
    pub acls: BTreeMap<String, Acl>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
    /// BGP process, if configured.
    pub bgp: Option<BgpProcess>,
    /// OSPF process, if configured.
    pub ospf: Option<OspfProcess>,
}

impl DeviceConfig {
    /// An empty configuration for `hostname` in vendor-A dialect.
    pub fn new(hostname: impl Into<String>, vendor: Vendor) -> Self {
        DeviceConfig {
            hostname: hostname.into(),
            vendor,
            interfaces: Vec::new(),
            route_maps: BTreeMap::new(),
            prefix_lists: BTreeMap::new(),
            acls: BTreeMap::new(),
            static_routes: Vec::new(),
            bgp: None,
            ospf: None,
        }
    }

    /// Finds an interface by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceConfig> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Finds the interface whose subnet contains `addr`.
    pub fn interface_for_addr(&self, addr: Ipv4Addr) -> Option<&InterfaceConfig> {
        self.interfaces.iter().find(|i| i.prefix.contains_addr(addr))
    }

    /// Validates internal consistency: interface name uniqueness and that
    /// every referenced route map / prefix list / ACL exists.
    pub fn validate(&self) -> Result<(), NetError> {
        let mut names = std::collections::HashSet::new();
        for i in &self.interfaces {
            if !names.insert(&i.name) {
                return Err(NetError::Inconsistent(format!(
                    "{}: duplicate interface {}",
                    self.hostname, i.name
                )));
            }
            for acl in [&i.acl_in, &i.acl_out].into_iter().flatten() {
                if !self.acls.contains_key(acl) {
                    return Err(NetError::UndefinedReference {
                        kind: "acl",
                        name: acl.clone(),
                    });
                }
            }
        }
        if let Some(bgp) = &self.bgp {
            for n in &bgp.neighbors {
                for rm in [&n.import_policy, &n.export_policy].into_iter().flatten() {
                    if !self.route_maps.contains_key(rm) {
                        return Err(NetError::UndefinedReference {
                            kind: "route-map",
                            name: rm.clone(),
                        });
                    }
                }
            }
        }
        if let Some(ospf) = &self.ospf {
            for i in &ospf.interfaces {
                if self.interface(i).is_none() {
                    return Err(NetError::UndefinedReference {
                        kind: "interface",
                        name: i.clone(),
                    });
                }
            }
        }
        // Route maps may reference prefix lists.
        for (rm_name, rm) in &self.route_maps {
            for clause in &rm.clauses {
                for m in &clause.matches {
                    if let crate::policy::MatchCondition::PrefixList(pl) = m {
                        if !self.prefix_lists.contains_key(pl) {
                            return Err(NetError::UndefinedReference {
                                kind: "prefix-list",
                                name: format!("{pl} (in route-map {rm_name})"),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MatchCondition, RouteMapClause, RouteMapDisposition};

    fn cfg() -> DeviceConfig {
        let mut c = DeviceConfig::new("r1", Vendor::A);
        c.interfaces
            .push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 1), 31));
        c
    }

    #[test]
    fn validate_ok_for_minimal_config() {
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_interface() {
        let mut c = cfg();
        c.interfaces
            .push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 3), 31));
        assert!(matches!(c.validate(), Err(NetError::Inconsistent(_))));
    }

    #[test]
    fn validate_rejects_missing_acl() {
        let mut c = cfg();
        c.interfaces[0].acl_in = Some("NOPE".into());
        assert!(matches!(
            c.validate(),
            Err(NetError::UndefinedReference { kind: "acl", .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_route_map() {
        let mut c = cfg();
        let mut bgp = BgpProcess::new(65001, Ipv4Addr::new(1, 1, 1, 1));
        bgp.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 0),
            remote_as: 65002,
            import_policy: Some("MISSING".into()),
            export_policy: None,
            remove_private_as: false,
        });
        c.bgp = Some(bgp);
        assert!(matches!(
            c.validate(),
            Err(NetError::UndefinedReference { kind: "route-map", .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_prefix_list_in_route_map() {
        let mut c = cfg();
        let mut rm = RouteMap::default();
        rm.push_clause(RouteMapClause {
            seq: 10,
            disposition: RouteMapDisposition::Permit,
            matches: vec![MatchCondition::PrefixList("PL".into())],
            actions: vec![],
        });
        c.route_maps.insert("RM".into(), rm);
        assert!(matches!(
            c.validate(),
            Err(NetError::UndefinedReference { kind: "prefix-list", .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_ospf_interface() {
        let mut c = cfg();
        c.ospf = Some(OspfProcess {
            interfaces: vec!["ethX".into()],
            default_cost: 10,
        });
        assert!(matches!(
            c.validate(),
            Err(NetError::UndefinedReference { kind: "interface", .. })
        ));
    }

    #[test]
    fn interface_lookup_by_addr() {
        let c = cfg();
        assert_eq!(
            c.interface_for_addr(Ipv4Addr::new(10, 0, 0, 0)).unwrap().name,
            "eth0"
        );
        assert!(c.interface_for_addr(Ipv4Addr::new(10, 0, 0, 2)).is_none());
    }

    #[test]
    fn vendor_quirks_differ() {
        assert_ne!(
            Vendor::A.quirks().remove_private_as,
            Vendor::B.quirks().remove_private_as
        );
        assert!(Vendor::A.quirks().accept_empty_ebgp_as_path);
        assert!(!Vendor::B.quirks().accept_empty_ebgp_as_path);
    }
}
