//! Packet-filter (ACL) model.
//!
//! ACLs are matched against the 104-bit 5-tuple header space during data
//! plane verification; the dataplane crate compiles each ACL into a BDD
//! predicate (`p_in` / `p_out` in the paper's Eq. 1).

use crate::ip::Prefix;
use serde::{Deserialize, Serialize};

/// Permit or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AclAction {
    /// Matching packets pass.
    Permit,
    /// Matching packets are dropped.
    Deny,
}

/// An inclusive port range. `0..=65535` matches any port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortRange {
    /// Lowest matching port.
    pub lo: u16,
    /// Highest matching port.
    pub hi: u16,
}

impl PortRange {
    /// The full range (matches everything).
    pub const ANY: PortRange = PortRange { lo: 0, hi: u16::MAX };

    /// A single-port range.
    pub const fn exact(p: u16) -> Self {
        PortRange { lo: p, hi: p }
    }

    /// Whether `p` falls inside the range.
    pub const fn contains(&self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Whether this is the unconstrained range.
    pub const fn is_any(&self) -> bool {
        self.lo == 0 && self.hi == u16::MAX
    }
}

/// A single ACL entry; all fields are ANDed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclEntry {
    /// Permit or deny matching packets.
    pub action: AclAction,
    /// Source prefix to match (default route = any).
    pub src: Prefix,
    /// Destination prefix to match (default route = any).
    pub dst: Prefix,
    /// IP protocol number to match, or `None` for any.
    pub proto: Option<u8>,
    /// Source port range (only meaningful for TCP/UDP).
    pub src_ports: PortRange,
    /// Destination port range (only meaningful for TCP/UDP).
    pub dst_ports: PortRange,
}

impl AclEntry {
    /// An entry matching every packet with the given action.
    pub const fn any(action: AclAction) -> Self {
        AclEntry {
            action,
            src: Prefix::DEFAULT,
            dst: Prefix::DEFAULT,
            proto: None,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
        }
    }
}

/// A named ACL: ordered entries, first match wins, implicit deny at the end
/// (standard router semantics).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Acl {
    /// Entries in configuration order.
    pub entries: Vec<AclEntry>,
}

impl Acl {
    /// An ACL that permits everything.
    pub fn permit_all() -> Self {
        Acl {
            entries: vec![AclEntry::any(AclAction::Permit)],
        }
    }

    /// Evaluates the ACL against a concrete 5-tuple; used by tests as the
    /// ground truth the BDD compilation is checked against.
    pub fn permits(
        &self,
        src: crate::ip::Ipv4Addr,
        dst: crate::ip::Ipv4Addr,
        proto: u8,
        sport: u16,
        dport: u16,
    ) -> bool {
        for e in &self.entries {
            let matches = e.src.contains_addr(src)
                && e.dst.contains_addr(dst)
                && e.proto.is_none_or(|p| p == proto)
                && e.src_ports.contains(sport)
                && e.dst_ports.contains(dport);
            if matches {
                return matches!(e.action, AclAction::Permit);
            }
        }
        false // implicit deny
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn port_range_semantics() {
        assert!(PortRange::ANY.contains(0) && PortRange::ANY.contains(65535));
        assert!(PortRange::ANY.is_any());
        let r = PortRange { lo: 80, hi: 443 };
        assert!(r.contains(80) && r.contains(443) && r.contains(100));
        assert!(!r.contains(79) && !r.contains(444));
        assert!(!r.is_any());
        assert!(PortRange::exact(22).contains(22));
        assert!(!PortRange::exact(22).contains(23));
    }

    #[test]
    fn first_match_wins_with_implicit_deny() {
        let acl = Acl {
            entries: vec![
                AclEntry {
                    action: AclAction::Deny,
                    dst: p("10.9.0.0/16"),
                    ..AclEntry::any(AclAction::Deny)
                },
                AclEntry {
                    action: AclAction::Permit,
                    dst: p("10.0.0.0/8"),
                    ..AclEntry::any(AclAction::Permit)
                },
            ],
        };
        assert!(!acl.permits(a("1.1.1.1"), a("10.9.1.1"), 6, 1, 1));
        assert!(acl.permits(a("1.1.1.1"), a("10.1.1.1"), 6, 1, 1));
        assert!(!acl.permits(a("1.1.1.1"), a("11.0.0.1"), 6, 1, 1)); // implicit deny
    }

    #[test]
    fn proto_and_port_constraints() {
        let acl = Acl {
            entries: vec![AclEntry {
                action: AclAction::Permit,
                proto: Some(6),
                dst_ports: PortRange::exact(443),
                ..AclEntry::any(AclAction::Permit)
            }],
        };
        assert!(acl.permits(a("1.1.1.1"), a("2.2.2.2"), 6, 1234, 443));
        assert!(!acl.permits(a("1.1.1.1"), a("2.2.2.2"), 17, 1234, 443));
        assert!(!acl.permits(a("1.1.1.1"), a("2.2.2.2"), 6, 1234, 80));
    }

    #[test]
    fn permit_all_permits_everything() {
        let acl = Acl::permit_all();
        assert!(acl.permits(a("0.0.0.0"), a("255.255.255.255"), 255, 0, 65535));
    }

    #[test]
    fn empty_acl_denies_everything() {
        let acl = Acl::default();
        assert!(!acl.permits(a("1.2.3.4"), a("5.6.7.8"), 6, 80, 80));
    }
}
