//! Vendor B: a braced, JunOS-flavoured configuration dialect.
//!
//! Statements end with `;`, blocks are `name { ... }`, comments start with
//! `#`. Grammar sketch:
//!
//! ```text
//! host-name NAME;
//! interfaces { NAME { address A.B.C.D/L; filter-in ACL; filter-out ACL; ospf-cost N; } }
//! policy-options {
//!     prefix-list NAME { (permit|deny) P [ge N] [le N]; }
//!     policy-statement NAME {
//!         term SEQ {
//!             from prefix-list NAME; | from community H:L; | from as-path ASN;
//!             from prefix-length-range MIN MAX;
//!             then local-preference N; | then med N;
//!             then community (add|delete) H:L; | then community set H:L[,H:L];
//!             then as-path-prepend ASN COUNT; | then as-path-overwrite ASN[,ASN];
//!             then (accept|reject);
//!         }
//!     }
//!     filter NAME { (permit|deny) from (any|P) to (any|P) [proto N] [sport LO HI] [dport LO HI]; }
//! }
//! routing-options { static { route P (next-hop A.B.C.D|discard); } }
//! protocols {
//!     bgp {
//!         autonomous-system ASN; router-id A.B.C.D; multipath N;
//!         network P; aggregate P [summary-only] [community H:L[,H:L]];
//!         redistribute (connected|static|ospf);
//!         neighbor A.B.C.D { peer-as ASN; import NAME; export NAME; remove-private; }
//!     }
//!     ospf { default-cost N; interface NAME; }
//! }
//! ```
//!
//! Vendor B's semantic quirks: `remove-private` strips only the **leading**
//! run of private ASNs, and eBGP routes with an empty AS path are rejected.

use crate::acl::{AclAction, AclEntry, PortRange};
use crate::config::{
    Aggregate, BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, OspfProcess,
    StaticRoute, Vendor,
};
use crate::error::NetError;
use crate::ip::{Ipv4Addr, Prefix};
use crate::policy::{
    community_string, AsPathAction, CommunityAction, MatchCondition, PolicyAction,
    PrefixListEntry, Protocol, RouteMapClause, RouteMapDisposition,
};

use super::util::{parse_community, parse_num, parse_prefix, syntax};

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    LBrace,
    RBrace,
    Semi,
}

/// Tokenizes the input, tracking line numbers.
fn lex(text: &str) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut word = String::new();
        let flush = |toks: &mut Vec<(Tok, usize)>, word: &mut String| {
            if !word.is_empty() {
                toks.push((Tok::Word(std::mem::take(word)), lineno));
            }
        };
        for ch in line.chars() {
            match ch {
                '{' => {
                    flush(&mut toks, &mut word);
                    toks.push((Tok::LBrace, lineno));
                }
                '}' => {
                    flush(&mut toks, &mut word);
                    toks.push((Tok::RBrace, lineno));
                }
                ';' => {
                    flush(&mut toks, &mut word);
                    toks.push((Tok::Semi, lineno));
                }
                c if c.is_whitespace() => flush(&mut toks, &mut word),
                c => word.push(c),
            }
        }
        flush(&mut toks, &mut word);
    }
    toks
}

/// Token cursor with convenience accessors.
struct Cursor {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_word(&mut self) -> Result<String, NetError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(syntax(line, format!("expected word, got {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), NetError> {
        let line = self.line();
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(syntax(line, format!("expected {tok:?}, got {other:?}"))),
        }
    }

    /// Collects the words of a statement up to `;`.
    fn statement(&mut self, first: String) -> Result<(Vec<String>, usize), NetError> {
        let line = self.line();
        let mut words = vec![first];
        loop {
            match self.next() {
                Some(Tok::Word(w)) => words.push(w),
                Some(Tok::Semi) => return Ok((words, line)),
                other => return Err(syntax(line, format!("unterminated statement: got {other:?}"))),
            }
        }
    }

    /// Skips a balanced `{ ... }` block (cursor must be at `{`).
    #[allow(dead_code)]
    fn skip_block(&mut self) -> Result<(), NetError> {
        self.expect(Tok::LBrace)?;
        let mut depth = 1;
        while depth > 0 {
            let line = self.line();
            match self.next() {
                Some(Tok::LBrace) => depth += 1,
                Some(Tok::RBrace) => depth -= 1,
                Some(_) => {}
                None => return Err(syntax(line, "unterminated block")),
            }
        }
        Ok(())
    }
}

/// Parses a vendor-B configuration file.
pub fn parse(text: &str) -> Result<DeviceConfig, NetError> {
    let mut cur = Cursor { toks: lex(text), pos: 0 };
    let mut cfg = DeviceConfig::new("", Vendor::B);

    while let Some(tok) = cur.peek() {
        let line = cur.line();
        match tok {
            Tok::Word(w) => match w.as_str() {
                "host-name" => {
                    cur.next();
                    cfg.hostname = cur.expect_word()?;
                    cur.expect(Tok::Semi)?;
                }
                "interfaces" => {
                    cur.next();
                    parse_interfaces(&mut cur, &mut cfg)?;
                }
                "policy-options" => {
                    cur.next();
                    parse_policy_options(&mut cur, &mut cfg)?;
                }
                "routing-options" => {
                    cur.next();
                    parse_routing_options(&mut cur, &mut cfg)?;
                }
                "protocols" => {
                    cur.next();
                    parse_protocols(&mut cur, &mut cfg)?;
                }
                other => return Err(syntax(line, format!("unknown top-level {other:?}"))),
            },
            other => return Err(syntax(line, format!("unexpected token {other:?}"))),
        }
    }

    if cfg.hostname.is_empty() {
        return Err(syntax(1, "missing host-name"));
    }
    cfg.validate()?;
    Ok(cfg)
}

fn parse_interfaces(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                return Ok(());
            }
            Some(Tok::Word(_)) => {
                let name = cur.expect_word()?;
                cur.expect(Tok::LBrace)?;
                let mut iface = InterfaceConfig::new(name, Ipv4Addr::UNSPECIFIED, 32);
                loop {
                    match cur.peek() {
                        Some(Tok::RBrace) => {
                            cur.next();
                            break;
                        }
                        Some(Tok::Word(_)) => {
                            let first = cur.expect_word()?;
                            let (words, line) = cur.statement(first)?;
                            match words[0].as_str() {
                                "address" => {
                                    let spec = words.get(1).ok_or_else(|| syntax(line, "missing address"))?;
                                    let (addr, len) = spec
                                        .split_once('/')
                                        .ok_or_else(|| syntax(line, "expected A.B.C.D/L"))?;
                                    iface.addr =
                                        addr.parse().map_err(|_| syntax(line, "bad address"))?;
                                    let len: u8 = parse_num(len, "mask length", line)?;
                                    iface.prefix = Prefix::new(iface.addr, len);
                                }
                                "filter-in" => {
                                    iface.acl_in = Some(
                                        words.get(1).ok_or_else(|| syntax(line, "missing filter"))?.clone(),
                                    )
                                }
                                "filter-out" => {
                                    iface.acl_out = Some(
                                        words.get(1).ok_or_else(|| syntax(line, "missing filter"))?.clone(),
                                    )
                                }
                                "ospf-cost" => {
                                    iface.ospf_cost = Some(parse_num(
                                        words.get(1).ok_or_else(|| syntax(line, "missing cost"))?,
                                        "cost",
                                        line,
                                    )?)
                                }
                                other => {
                                    return Err(syntax(line, format!("unknown interface stmt {other:?}")))
                                }
                            }
                        }
                        other => return Err(syntax(cur.line(), format!("unexpected {other:?}"))),
                    }
                }
                cfg.interfaces.push(iface);
            }
            other => return Err(syntax(cur.line(), format!("unexpected {other:?}"))),
        }
    }
}

fn parse_policy_options(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                return Ok(());
            }
            Some(Tok::Word(w)) => match w.as_str() {
                "prefix-list" => {
                    cur.next();
                    let name = cur.expect_word()?;
                    cur.expect(Tok::LBrace)?;
                    let pl = cfg.prefix_lists.entry(name).or_default();
                    while !matches!(cur.peek(), Some(Tok::RBrace)) {
                        let first = cur.expect_word()?;
                        let (words, line) = cur.statement(first)?;
                        let permit = match words[0].as_str() {
                            "permit" => true,
                            "deny" => false,
                            other => return Err(syntax(line, format!("expected permit|deny, got {other:?}"))),
                        };
                        let prefix = parse_prefix(
                            words.get(1).ok_or_else(|| syntax(line, "missing prefix"))?,
                            line,
                        )?;
                        let mut ge = None;
                        let mut le = None;
                        let mut i = 2;
                        while i < words.len() {
                            match words[i].as_str() {
                                "ge" => {
                                    ge = Some(parse_num(
                                        words.get(i + 1).ok_or_else(|| syntax(line, "missing ge"))?,
                                        "ge",
                                        line,
                                    )?);
                                    i += 2;
                                }
                                "le" => {
                                    le = Some(parse_num(
                                        words.get(i + 1).ok_or_else(|| syntax(line, "missing le"))?,
                                        "le",
                                        line,
                                    )?);
                                    i += 2;
                                }
                                other => return Err(syntax(line, format!("unexpected {other:?}"))),
                            }
                        }
                        pl.entries.push(PrefixListEntry { prefix, ge, le, permit });
                    }
                    cur.next(); // consume }
                }
                "policy-statement" => {
                    cur.next();
                    parse_policy_statement(cur, cfg)?;
                }
                "filter" => {
                    cur.next();
                    parse_filter(cur, cfg)?;
                }
                other => return Err(syntax(cur.line(), format!("unknown policy-options {other:?}"))),
            },
            other => return Err(syntax(cur.line(), format!("unexpected {other:?}"))),
        }
    }
}

fn parse_policy_statement(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    let name = cur.expect_word()?;
    cur.expect(Tok::LBrace)?;
    let rm = cfg.route_maps.entry(name).or_default();
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                return Ok(());
            }
            Some(Tok::Word(w)) if w == "term" => {
                cur.next();
                let seq: u32 = {
                    let line = cur.line();
                    parse_num(&cur.expect_word()?, "term sequence", line)?
                };
                cur.expect(Tok::LBrace)?;
                let mut clause = RouteMapClause {
                    seq,
                    disposition: RouteMapDisposition::Permit,
                    matches: Vec::new(),
                    actions: Vec::new(),
                };
                while !matches!(cur.peek(), Some(Tok::RBrace)) {
                    let first = cur.expect_word()?;
                    let (words, line) = cur.statement(first)?;
                    parse_term_statement(&mut clause, &words, line)?;
                }
                cur.next(); // consume }
                rm.push_clause(clause);
            }
            other => return Err(syntax(cur.line(), format!("expected term, got {other:?}"))),
        }
    }
}

fn parse_term_statement(
    clause: &mut RouteMapClause,
    words: &[String],
    line: usize,
) -> Result<(), NetError> {
    match words[0].as_str() {
        "from" => match words.get(1).map(String::as_str) {
            Some("prefix-list") => clause.matches.push(MatchCondition::PrefixList(
                words.get(2).ok_or_else(|| syntax(line, "missing prefix-list"))?.clone(),
            )),
            Some("community") => clause.matches.push(MatchCondition::Community(parse_community(
                words.get(2).ok_or_else(|| syntax(line, "missing community"))?,
                line,
            )?)),
            Some("as-path") => clause.matches.push(MatchCondition::AsPathContains(parse_num(
                words.get(2).ok_or_else(|| syntax(line, "missing ASN"))?,
                "ASN",
                line,
            )?)),
            Some("prefix-length-range") => clause.matches.push(MatchCondition::PrefixLenRange(
                parse_num(words.get(2).ok_or_else(|| syntax(line, "missing min"))?, "min", line)?,
                parse_num(words.get(3).ok_or_else(|| syntax(line, "missing max"))?, "max", line)?,
            )),
            other => return Err(syntax(line, format!("unknown from {other:?}"))),
        },
        "then" => match words.get(1).map(String::as_str) {
            Some("accept") => clause.disposition = RouteMapDisposition::Permit,
            Some("reject") => clause.disposition = RouteMapDisposition::Deny,
            Some("local-preference") => clause.actions.push(PolicyAction::SetLocalPref(parse_num(
                words.get(2).ok_or_else(|| syntax(line, "missing value"))?,
                "local-preference",
                line,
            )?)),
            Some("med") => clause.actions.push(PolicyAction::SetMed(parse_num(
                words.get(2).ok_or_else(|| syntax(line, "missing value"))?,
                "med",
                line,
            )?)),
            Some("community") => {
                let op = words.get(2).map(String::as_str);
                let commstr = words.get(3).ok_or_else(|| syntax(line, "missing community"))?;
                match op {
                    Some("add") => clause
                        .actions
                        .push(PolicyAction::Community(CommunityAction::Add(parse_community(commstr, line)?))),
                    Some("delete") => clause.actions.push(PolicyAction::Community(
                        CommunityAction::Delete(parse_community(commstr, line)?),
                    )),
                    Some("set") => {
                        let comms: Result<Vec<_>, _> =
                            commstr.split(',').map(|c| parse_community(c, line)).collect();
                        clause.actions.push(PolicyAction::Community(CommunityAction::Set(comms?)));
                    }
                    other => return Err(syntax(line, format!("unknown community op {other:?}"))),
                }
            }
            Some("as-path-prepend") => {
                clause.actions.push(PolicyAction::AsPath(AsPathAction::Prepend {
                    asn: parse_num(
                        words.get(2).ok_or_else(|| syntax(line, "missing ASN"))?,
                        "ASN",
                        line,
                    )?,
                    count: parse_num(
                        words.get(3).ok_or_else(|| syntax(line, "missing count"))?,
                        "count",
                        line,
                    )?,
                }))
            }
            Some("as-path-overwrite") => {
                let list = words.get(2).ok_or_else(|| syntax(line, "missing ASNs"))?;
                // `none` clears the path entirely.
                let asns: Vec<u32> = if list == "none" {
                    Vec::new()
                } else {
                    list.split(',')
                        .map(|a| parse_num(a, "ASN", line))
                        .collect::<Result<_, _>>()?
                };
                clause.actions.push(PolicyAction::AsPath(AsPathAction::Overwrite(asns)));
            }
            other => return Err(syntax(line, format!("unknown then {other:?}"))),
        },
        other => return Err(syntax(line, format!("unknown term statement {other:?}"))),
    }
    Ok(())
}

fn parse_filter(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    let name = cur.expect_word()?;
    cur.expect(Tok::LBrace)?;
    let acl = cfg.acls.entry(name).or_default();
    while !matches!(cur.peek(), Some(Tok::RBrace)) {
        let first = cur.expect_word()?;
        let (words, line) = cur.statement(first)?;
        let action = match words[0].as_str() {
            "permit" => AclAction::Permit,
            "deny" => AclAction::Deny,
            other => return Err(syntax(line, format!("expected permit|deny, got {other:?}"))),
        };
        let mut entry = AclEntry::any(action);
        let mut i = 1;
        while i < words.len() {
            match words[i].as_str() {
                "from" => {
                    let w = words.get(i + 1).ok_or_else(|| syntax(line, "missing src"))?;
                    entry.src = if w == "any" { Prefix::DEFAULT } else { parse_prefix(w, line)? };
                    i += 2;
                }
                "to" => {
                    let w = words.get(i + 1).ok_or_else(|| syntax(line, "missing dst"))?;
                    entry.dst = if w == "any" { Prefix::DEFAULT } else { parse_prefix(w, line)? };
                    i += 2;
                }
                "proto" => {
                    entry.proto = Some(parse_num(
                        words.get(i + 1).ok_or_else(|| syntax(line, "missing proto"))?,
                        "proto",
                        line,
                    )?);
                    i += 2;
                }
                "sport" => {
                    entry.src_ports = PortRange {
                        lo: parse_num(words.get(i + 1).ok_or_else(|| syntax(line, "missing lo"))?, "sport", line)?,
                        hi: parse_num(words.get(i + 2).ok_or_else(|| syntax(line, "missing hi"))?, "sport", line)?,
                    };
                    i += 3;
                }
                "dport" => {
                    entry.dst_ports = PortRange {
                        lo: parse_num(words.get(i + 1).ok_or_else(|| syntax(line, "missing lo"))?, "dport", line)?,
                        hi: parse_num(words.get(i + 2).ok_or_else(|| syntax(line, "missing hi"))?, "dport", line)?,
                    };
                    i += 3;
                }
                "any" => i += 1,
                other => return Err(syntax(line, format!("unexpected filter token {other:?}"))),
            }
        }
        acl.entries.push(entry);
    }
    cur.next(); // consume }
    Ok(())
}

fn parse_routing_options(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                return Ok(());
            }
            Some(Tok::Word(w)) if w == "static" => {
                cur.next();
                cur.expect(Tok::LBrace)?;
                while !matches!(cur.peek(), Some(Tok::RBrace)) {
                    let first = cur.expect_word()?;
                    let (words, line) = cur.statement(first)?;
                    if words[0] != "route" {
                        return Err(syntax(line, "expected route"));
                    }
                    let prefix = parse_prefix(
                        words.get(1).ok_or_else(|| syntax(line, "missing prefix"))?,
                        line,
                    )?;
                    let next_hop = match words.get(2).map(String::as_str) {
                        Some("next-hop") => Some(
                            words
                                .get(3)
                                .ok_or_else(|| syntax(line, "missing next-hop"))?
                                .parse::<Ipv4Addr>()
                                .map_err(|_| syntax(line, "bad next-hop"))?,
                        ),
                        Some("discard") => None,
                        other => return Err(syntax(line, format!("expected next-hop|discard, got {other:?}"))),
                    };
                    cfg.static_routes.push(StaticRoute { prefix, next_hop });
                }
                cur.next();
            }
            other => return Err(syntax(cur.line(), format!("unknown routing-options {other:?}"))),
        }
    }
}

fn parse_protocols(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                return Ok(());
            }
            Some(Tok::Word(w)) => match w.as_str() {
                "bgp" => {
                    cur.next();
                    parse_bgp(cur, cfg)?;
                }
                "ospf" => {
                    cur.next();
                    parse_ospf(cur, cfg)?;
                }
                other => return Err(syntax(cur.line(), format!("unknown protocol {other:?}"))),
            },
            other => return Err(syntax(cur.line(), format!("unexpected {other:?}"))),
        }
    }
}

fn parse_bgp(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    let mut bgp = BgpProcess::new(0, Ipv4Addr::UNSPECIFIED);
    loop {
        match cur.peek() {
            Some(Tok::RBrace) => {
                cur.next();
                break;
            }
            Some(Tok::Word(w)) if w == "neighbor" => {
                cur.next();
                let line = cur.line();
                let peer: Ipv4Addr = cur
                    .expect_word()?
                    .parse()
                    .map_err(|_| syntax(line, "bad neighbor address"))?;
                cur.expect(Tok::LBrace)?;
                let mut n = BgpNeighbor {
                    peer,
                    remote_as: 0,
                    import_policy: None,
                    export_policy: None,
                    remove_private_as: false,
                };
                while !matches!(cur.peek(), Some(Tok::RBrace)) {
                    let first = cur.expect_word()?;
                    let (words, line) = cur.statement(first)?;
                    match words[0].as_str() {
                        "peer-as" => {
                            n.remote_as = parse_num(
                                words.get(1).ok_or_else(|| syntax(line, "missing ASN"))?,
                                "ASN",
                                line,
                            )?
                        }
                        "import" => {
                            n.import_policy =
                                Some(words.get(1).ok_or_else(|| syntax(line, "missing policy"))?.clone())
                        }
                        "export" => {
                            n.export_policy =
                                Some(words.get(1).ok_or_else(|| syntax(line, "missing policy"))?.clone())
                        }
                        "remove-private" => n.remove_private_as = true,
                        other => return Err(syntax(line, format!("unknown neighbor stmt {other:?}"))),
                    }
                }
                cur.next();
                if n.remote_as == 0 {
                    return Err(syntax(cur.line(), format!("neighbor {peer} missing peer-as")));
                }
                bgp.neighbors.push(n);
            }
            Some(Tok::Word(_)) => {
                let first = cur.expect_word()?;
                let (words, line) = cur.statement(first)?;
                match words[0].as_str() {
                    "autonomous-system" => {
                        bgp.asn = parse_num(
                            words.get(1).ok_or_else(|| syntax(line, "missing ASN"))?,
                            "ASN",
                            line,
                        )?
                    }
                    "router-id" => {
                        bgp.router_id = words
                            .get(1)
                            .ok_or_else(|| syntax(line, "missing router-id"))?
                            .parse()
                            .map_err(|_| syntax(line, "bad router-id"))?
                    }
                    "multipath" => {
                        bgp.max_ecmp = parse_num(
                            words.get(1).ok_or_else(|| syntax(line, "missing value"))?,
                            "multipath",
                            line,
                        )?
                    }
                    "network" => bgp.networks.push(Network {
                        prefix: parse_prefix(
                            words.get(1).ok_or_else(|| syntax(line, "missing prefix"))?,
                            line,
                        )?,
                    }),
                    "aggregate" => {
                        let prefix = parse_prefix(
                            words.get(1).ok_or_else(|| syntax(line, "missing prefix"))?,
                            line,
                        )?;
                        let mut agg = Aggregate {
                            prefix,
                            summary_only: false,
                            communities: Vec::new(),
                        };
                        let mut i = 2;
                        while i < words.len() {
                            match words[i].as_str() {
                                "summary-only" => {
                                    agg.summary_only = true;
                                    i += 1;
                                }
                                "community" => {
                                    for c in words
                                        .get(i + 1)
                                        .ok_or_else(|| syntax(line, "missing communities"))?
                                        .split(',')
                                    {
                                        agg.communities.push(parse_community(c, line)?);
                                    }
                                    i += 2;
                                }
                                other => return Err(syntax(line, format!("unexpected {other:?}"))),
                            }
                        }
                        bgp.aggregates.push(agg);
                    }
                    "conditional" => {
                        let advertise = parse_prefix(
                            words.get(1).ok_or_else(|| syntax(line, "missing prefix"))?,
                            line,
                        )?;
                        let when_present = match words.get(2).map(String::as_str) {
                            Some("exist") => true,
                            Some("non-exist") => false,
                            other => {
                                return Err(syntax(line, format!("expected exist|non-exist, got {other:?}")))
                            }
                        };
                        let condition = parse_prefix(
                            words.get(3).ok_or_else(|| syntax(line, "missing condition"))?,
                            line,
                        )?;
                        bgp.conditional.push(crate::config::ConditionalAdvertisement {
                            advertise,
                            condition,
                            when_present,
                        });
                    }
                    "redistribute" => {
                        let proto = match words.get(1).map(String::as_str) {
                            Some("connected") => Protocol::Connected,
                            Some("static") => Protocol::Static,
                            Some("ospf") => Protocol::Ospf,
                            other => return Err(syntax(line, format!("cannot redistribute {other:?}"))),
                        };
                        bgp.redistribute.push(proto);
                    }
                    other => return Err(syntax(line, format!("unknown bgp stmt {other:?}"))),
                }
            }
            other => return Err(syntax(cur.line(), format!("unexpected {other:?}"))),
        }
    }
    cfg.bgp = Some(bgp);
    Ok(())
}

fn parse_ospf(cur: &mut Cursor, cfg: &mut DeviceConfig) -> Result<(), NetError> {
    cur.expect(Tok::LBrace)?;
    let mut ospf = OspfProcess {
        interfaces: Vec::new(),
        default_cost: 10,
    };
    while !matches!(cur.peek(), Some(Tok::RBrace)) {
        let first = cur.expect_word()?;
        let (words, line) = cur.statement(first)?;
        match words[0].as_str() {
            "interface" => ospf
                .interfaces
                .push(words.get(1).ok_or_else(|| syntax(line, "missing interface"))?.clone()),
            "default-cost" => {
                ospf.default_cost = parse_num(
                    words.get(1).ok_or_else(|| syntax(line, "missing cost"))?,
                    "cost",
                    line,
                )?
            }
            other => return Err(syntax(line, format!("unknown ospf stmt {other:?}"))),
        }
    }
    cur.next();
    cfg.ospf = Some(ospf);
    Ok(())
}

/// Emits `config` as vendor-B text. `parse(emit(c)) == c` for valid configs.
pub fn emit(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!("host-name {};\n", cfg.hostname));

    if !cfg.interfaces.is_empty() {
        out.push_str("interfaces {\n");
        for i in &cfg.interfaces {
            out.push_str(&format!("    {} {{\n", i.name));
            out.push_str(&format!("        address {}/{};\n", i.addr, i.prefix.len()));
            if let Some(f) = &i.acl_in {
                out.push_str(&format!("        filter-in {f};\n"));
            }
            if let Some(f) = &i.acl_out {
                out.push_str(&format!("        filter-out {f};\n"));
            }
            if let Some(c) = i.ospf_cost {
                out.push_str(&format!("        ospf-cost {c};\n"));
            }
            out.push_str("    }\n");
        }
        out.push_str("}\n");
    }

    if !cfg.prefix_lists.is_empty() || !cfg.route_maps.is_empty() || !cfg.acls.is_empty() {
        out.push_str("policy-options {\n");
        for (name, pl) in &cfg.prefix_lists {
            out.push_str(&format!("    prefix-list {name} {{\n"));
            for e in &pl.entries {
                let mut line = format!(
                    "        {} {}",
                    if e.permit { "permit" } else { "deny" },
                    e.prefix
                );
                if let Some(ge) = e.ge {
                    line.push_str(&format!(" ge {ge}"));
                }
                if let Some(le) = e.le {
                    line.push_str(&format!(" le {le}"));
                }
                out.push_str(&line);
                out.push_str(";\n");
            }
            out.push_str("    }\n");
        }
        for (name, rm) in &cfg.route_maps {
            out.push_str(&format!("    policy-statement {name} {{\n"));
            for clause in &rm.clauses {
                out.push_str(&format!("        term {} {{\n", clause.seq));
                for m in &clause.matches {
                    match m {
                        MatchCondition::PrefixList(pl) => {
                            out.push_str(&format!("            from prefix-list {pl};\n"))
                        }
                        MatchCondition::Community(c) => out.push_str(&format!(
                            "            from community {};\n",
                            community_string(*c)
                        )),
                        MatchCondition::AsPathContains(a) => {
                            out.push_str(&format!("            from as-path {a};\n"))
                        }
                        MatchCondition::PrefixLenRange(lo, hi) => out.push_str(&format!(
                            "            from prefix-length-range {lo} {hi};\n"
                        )),
                        MatchCondition::AsPathEmpty | MatchCondition::Protocol(_) => {}
                    }
                }
                for a in &clause.actions {
                    match a {
                        PolicyAction::SetLocalPref(v) => {
                            out.push_str(&format!("            then local-preference {v};\n"))
                        }
                        PolicyAction::SetMed(v) => out.push_str(&format!("            then med {v};\n")),
                        PolicyAction::Community(CommunityAction::Add(c)) => out.push_str(&format!(
                            "            then community add {};\n",
                            community_string(*c)
                        )),
                        PolicyAction::Community(CommunityAction::Delete(c)) => out.push_str(&format!(
                            "            then community delete {};\n",
                            community_string(*c)
                        )),
                        PolicyAction::Community(CommunityAction::Set(cs)) => {
                            let list: Vec<String> = cs.iter().map(|c| community_string(*c)).collect();
                            out.push_str(&format!("            then community set {};\n", list.join(",")));
                        }
                        PolicyAction::AsPath(AsPathAction::Prepend { asn, count }) => out.push_str(
                            &format!("            then as-path-prepend {asn} {count};\n"),
                        ),
                        PolicyAction::AsPath(AsPathAction::Overwrite(asns)) => {
                            let list = if asns.is_empty() {
                                "none".to_string()
                            } else {
                                asns.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
                            };
                            out.push_str(&format!("            then as-path-overwrite {list};\n"));
                        }
                        PolicyAction::AsPath(AsPathAction::RemovePrivate(_)) => {}
                    }
                }
                let verdict = match clause.disposition {
                    RouteMapDisposition::Permit => "accept",
                    RouteMapDisposition::Deny => "reject",
                };
                out.push_str(&format!("            then {verdict};\n"));
                out.push_str("        }\n");
            }
            out.push_str("    }\n");
        }
        for (name, acl) in &cfg.acls {
            out.push_str(&format!("    filter {name} {{\n"));
            for e in &acl.entries {
                let mut line = format!(
                    "        {} from {} to {}",
                    match e.action {
                        AclAction::Permit => "permit",
                        AclAction::Deny => "deny",
                    },
                    if e.src == Prefix::DEFAULT { "any".to_string() } else { e.src.to_string() },
                    if e.dst == Prefix::DEFAULT { "any".to_string() } else { e.dst.to_string() },
                );
                if let Some(p) = e.proto {
                    line.push_str(&format!(" proto {p}"));
                }
                if !e.src_ports.is_any() {
                    line.push_str(&format!(" sport {} {}", e.src_ports.lo, e.src_ports.hi));
                }
                if !e.dst_ports.is_any() {
                    line.push_str(&format!(" dport {} {}", e.dst_ports.lo, e.dst_ports.hi));
                }
                out.push_str(&line);
                out.push_str(";\n");
            }
            out.push_str("    }\n");
        }
        out.push_str("}\n");
    }

    if !cfg.static_routes.is_empty() {
        out.push_str("routing-options {\n    static {\n");
        for s in &cfg.static_routes {
            match s.next_hop {
                Some(nh) => out.push_str(&format!("        route {} next-hop {};\n", s.prefix, nh)),
                None => out.push_str(&format!("        route {} discard;\n", s.prefix)),
            }
        }
        out.push_str("    }\n}\n");
    }

    if cfg.bgp.is_some() || cfg.ospf.is_some() {
        out.push_str("protocols {\n");
        if let Some(bgp) = &cfg.bgp {
            out.push_str("    bgp {\n");
            out.push_str(&format!("        autonomous-system {};\n", bgp.asn));
            out.push_str(&format!("        router-id {};\n", bgp.router_id));
            if bgp.max_ecmp != 1 {
                out.push_str(&format!("        multipath {};\n", bgp.max_ecmp));
            }
            for n in &bgp.networks {
                out.push_str(&format!("        network {};\n", n.prefix));
            }
            for a in &bgp.aggregates {
                let mut line = format!("        aggregate {}", a.prefix);
                if a.summary_only {
                    line.push_str(" summary-only");
                }
                if !a.communities.is_empty() {
                    let list: Vec<String> = a.communities.iter().map(|c| community_string(*c)).collect();
                    line.push_str(&format!(" community {}", list.join(",")));
                }
                out.push_str(&line);
                out.push_str(";\n");
            }
            for p in &bgp.redistribute {
                let name = match p {
                    Protocol::Connected => "connected",
                    Protocol::Static => "static",
                    Protocol::Ospf => "ospf",
                    _ => continue,
                };
                out.push_str(&format!("        redistribute {name};\n"));
            }
            for c in &bgp.conditional {
                out.push_str(&format!(
                    "        conditional {} {} {};\n",
                    c.advertise,
                    if c.when_present { "exist" } else { "non-exist" },
                    c.condition
                ));
            }
            for n in &bgp.neighbors {
                out.push_str(&format!("        neighbor {} {{\n", n.peer));
                out.push_str(&format!("            peer-as {};\n", n.remote_as));
                if let Some(p) = &n.import_policy {
                    out.push_str(&format!("            import {p};\n"));
                }
                if let Some(p) = &n.export_policy {
                    out.push_str(&format!("            export {p};\n"));
                }
                if n.remove_private_as {
                    out.push_str("            remove-private;\n");
                }
                out.push_str("        }\n");
            }
            out.push_str("    }\n");
        }
        if let Some(ospf) = &cfg.ospf {
            out.push_str("    ospf {\n");
            out.push_str(&format!("        default-cost {};\n", ospf.default_cost));
            for i in &ospf.interfaces {
                out.push_str(&format!("        interface {i};\n"));
            }
            out.push_str("    }\n");
        }
        out.push_str("}\n");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::community;

    const SAMPLE: &str = "\
host-name spine0;  # a comment
interfaces {
    eth0 {
        address 10.0.0.0/31;
        filter-in FILTER;
        ospf-cost 5;
    }
    lo0 {
        address 2.2.2.2/32;
    }
}
policy-options {
    prefix-list PL {
        permit 10.0.0.0/8 ge 16 le 24;
        deny 0.0.0.0/0;
    }
    policy-statement RM {
        term 10 {
            from prefix-list PL;
            from community 65000:1;
            then local-preference 200;
            then community add 65000:2;
            then as-path-prepend 65001 3;
            then accept;
        }
        term 20 {
            then reject;
        }
    }
    filter FILTER {
        deny from any to 10.9.0.0/16 proto 6 dport 22 22;
        permit from any to any;
    }
}
routing-options {
    static {
        route 0.0.0.0/0 next-hop 10.0.0.1;
        route 192.0.2.0/24 discard;
    }
}
protocols {
    bgp {
        autonomous-system 65001;
        router-id 2.2.2.2;
        multipath 64;
        network 10.1.0.0/24;
        aggregate 10.0.0.0/8 summary-only community 65000:9;
        redistribute ospf;
        neighbor 10.0.0.1 {
            peer-as 65002;
            import RM;
            export RM;
            remove-private;
        }
    }
    ospf {
        default-cost 5;
        interface eth0;
    }
}
";

    #[test]
    fn parses_full_sample() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.hostname, "spine0");
        assert_eq!(cfg.vendor, Vendor::B);
        assert_eq!(cfg.interfaces.len(), 2);
        assert_eq!(cfg.interfaces[0].acl_in.as_deref(), Some("FILTER"));
        assert_eq!(cfg.interfaces[0].ospf_cost, Some(5));
        assert_eq!(cfg.prefix_lists["PL"].entries.len(), 2);
        let rm = &cfg.route_maps["RM"];
        assert_eq!(rm.clauses.len(), 2);
        assert_eq!(rm.clauses[0].disposition, RouteMapDisposition::Permit);
        assert_eq!(rm.clauses[1].disposition, RouteMapDisposition::Deny);
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 65001);
        assert_eq!(bgp.max_ecmp, 64);
        assert_eq!(bgp.aggregates[0].communities, vec![community(65000, 9)]);
        assert!(bgp.neighbors[0].remove_private_as);
        assert_eq!(cfg.static_routes.len(), 2);
        assert_eq!(cfg.static_routes[1].next_hop, None);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let cfg = parse(SAMPLE).unwrap();
        let text = emit(&cfg);
        let cfg2 = parse(&text).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn neighbor_requires_peer_as() {
        let bad = "host-name x;\nprotocols { bgp { autonomous-system 1; neighbor 1.2.3.4 { import RM; } } }\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn unterminated_block_is_rejected() {
        let bad = "host-name x;\ninterfaces {\n eth0 {\n address 1.2.3.4/32;\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let cfg = parse("# leading comment\nhost-name y; # trailing\n").unwrap();
        assert_eq!(cfg.hostname, "y");
    }

    #[test]
    fn error_line_numbers_are_positioned() {
        let bad = "host-name x;\nprotocols {\n    bgp {\n        bogus-stmt 1;\n    }\n}\n";
        match parse(bad) {
            Err(NetError::Syntax { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }
}
