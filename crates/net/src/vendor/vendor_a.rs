//! Vendor A: a line-oriented, IOS-flavoured configuration dialect.
//!
//! Grammar sketch (one command per line; `!` or `#` starts a comment;
//! indented lines belong to the most recent section header):
//!
//! ```text
//! hostname NAME
//! interface NAME
//!  ip address A.B.C.D/L
//!  ip access-group ACL in|out
//!  ip ospf cost N
//! ip prefix-list NAME permit|deny P [ge N] [le N]
//! ip access-list NAME
//!  permit|deny ip (any|P) (any|P) [proto N] [sport LO HI] [dport LO HI]
//! route-map NAME permit|deny SEQ
//!  match ip address prefix-list NAME
//!  match community H:L
//!  match as-path ASN
//!  match prefix-len MIN MAX
//!  set local-preference N
//!  set med N
//!  set community H:L[,H:L] [additive]
//!  set comm-list H:L delete
//!  set as-path prepend ASN COUNT
//!  set as-path overwrite ASN[,ASN]
//! router bgp ASN
//!  router-id A.B.C.D
//!  maximum-paths N
//!  network P
//!  aggregate-address P [summary-only] [community H:L[,H:L]]
//!  redistribute (connected|static|ospf)
//!  neighbor A.B.C.D remote-as ASN
//!  neighbor A.B.C.D route-map NAME in|out
//!  neighbor A.B.C.D remove-private-as
//! router ospf
//!  interface NAME
//!  default-cost N
//! ip route P (A.B.C.D|null0)
//! ```
//!
//! Vendor A's semantic quirks: `remove-private-as` strips **all** private
//! ASNs, and empty eBGP AS paths are accepted (see
//! [`crate::config::VendorQuirks`]).

use crate::acl::{AclAction, AclEntry, PortRange};
use crate::config::{
    Aggregate, BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, OspfProcess,
    StaticRoute, Vendor,
};
use crate::error::NetError;
use crate::ip::{Ipv4Addr, Prefix};
use crate::policy::{
    community_string, AsPathAction, CommunityAction, MatchCondition, PolicyAction,
    PrefixListEntry, Protocol, RouteMapClause, RouteMapDisposition,
};

use super::util::{parse_community, parse_num, parse_prefix, syntax};

/// Which multi-line section the parser is currently inside.
enum Section {
    None,
    Interface(String),
    Acl(String),
    RouteMap(String, u32),
    Bgp,
    Ospf,
}

/// Parses a vendor-A configuration file.
pub fn parse(text: &str) -> Result<DeviceConfig, NetError> {
    let mut cfg = DeviceConfig::new("", Vendor::A);
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('!') || trimmed.starts_with('#') {
            continue;
        }
        let indented = line.starts_with(' ');
        let words: Vec<&str> = trimmed.split_whitespace().collect();

        if !indented {
            section = Section::None;
            match words[0] {
                "hostname" => {
                    let name = words.get(1).ok_or_else(|| syntax(lineno, "missing hostname"))?;
                    cfg.hostname = name.to_string();
                }
                "interface" => {
                    let name = words.get(1).ok_or_else(|| syntax(lineno, "missing interface name"))?;
                    cfg.interfaces.push(InterfaceConfig::new(
                        name.to_string(),
                        Ipv4Addr::UNSPECIFIED,
                        32,
                    ));
                    section = Section::Interface(name.to_string());
                }
                "ip" => match words.get(1).copied() {
                    Some("prefix-list") => parse_prefix_list_line(&mut cfg, &words, lineno)?,
                    Some("access-list") => {
                        let name = words
                            .get(2)
                            .ok_or_else(|| syntax(lineno, "missing access-list name"))?;
                        cfg.acls.entry(name.to_string()).or_default();
                        section = Section::Acl(name.to_string());
                    }
                    Some("route") => parse_static_route(&mut cfg, &words, lineno)?,
                    other => {
                        return Err(syntax(lineno, format!("unknown ip command {other:?}")));
                    }
                },
                "route-map" => {
                    let name = words.get(1).ok_or_else(|| syntax(lineno, "missing route-map name"))?;
                    let disp = match words.get(2).copied() {
                        Some("permit") => RouteMapDisposition::Permit,
                        Some("deny") => RouteMapDisposition::Deny,
                        _ => return Err(syntax(lineno, "expected permit|deny")),
                    };
                    let seq: u32 = parse_num(
                        words.get(3).ok_or_else(|| syntax(lineno, "missing sequence"))?,
                        "sequence",
                        lineno,
                    )?;
                    cfg.route_maps
                        .entry(name.to_string())
                        .or_default()
                        .push_clause(RouteMapClause {
                            seq,
                            disposition: disp,
                            matches: Vec::new(),
                            actions: Vec::new(),
                        });
                    section = Section::RouteMap(name.to_string(), seq);
                }
                "router" => match words.get(1).copied() {
                    Some("bgp") => {
                        let asn: u32 = parse_num(
                            words.get(2).ok_or_else(|| syntax(lineno, "missing ASN"))?,
                            "ASN",
                            lineno,
                        )?;
                        cfg.bgp = Some(BgpProcess::new(asn, Ipv4Addr::UNSPECIFIED));
                        section = Section::Bgp;
                    }
                    Some("ospf") => {
                        cfg.ospf = Some(OspfProcess {
                            interfaces: Vec::new(),
                            default_cost: 10,
                        });
                        section = Section::Ospf;
                    }
                    other => return Err(syntax(lineno, format!("unknown router {other:?}"))),
                },
                other => return Err(syntax(lineno, format!("unknown command {other:?}"))),
            }
            continue;
        }

        // Indented: dispatch on the current section.
        match &section {
            Section::None => return Err(syntax(lineno, "indented line outside any section")),
            Section::Interface(name) => parse_interface_line(&mut cfg, name, &words, lineno)?,
            Section::Acl(name) => parse_acl_line(&mut cfg, name, &words, lineno)?,
            Section::RouteMap(name, seq) => parse_route_map_line(&mut cfg, name, *seq, &words, lineno)?,
            Section::Bgp => parse_bgp_line(&mut cfg, &words, lineno)?,
            Section::Ospf => parse_ospf_line(&mut cfg, &words, lineno)?,
        }
    }

    if cfg.hostname.is_empty() {
        return Err(syntax(1, "missing hostname"));
    }
    cfg.validate()?;
    Ok(cfg)
}

fn parse_prefix_list_line(cfg: &mut DeviceConfig, words: &[&str], lineno: usize) -> Result<(), NetError> {
    // ip prefix-list NAME permit|deny P [ge N] [le N]
    let name = words.get(2).ok_or_else(|| syntax(lineno, "missing prefix-list name"))?;
    let permit = match words.get(3).copied() {
        Some("permit") => true,
        Some("deny") => false,
        _ => return Err(syntax(lineno, "expected permit|deny")),
    };
    let prefix = parse_prefix(
        words.get(4).ok_or_else(|| syntax(lineno, "missing prefix"))?,
        lineno,
    )?;
    let mut ge = None;
    let mut le = None;
    let mut i = 5;
    while i < words.len() {
        match words[i] {
            "ge" => {
                ge = Some(parse_num(
                    words.get(i + 1).ok_or_else(|| syntax(lineno, "missing ge value"))?,
                    "ge",
                    lineno,
                )?);
                i += 2;
            }
            "le" => {
                le = Some(parse_num(
                    words.get(i + 1).ok_or_else(|| syntax(lineno, "missing le value"))?,
                    "le",
                    lineno,
                )?);
                i += 2;
            }
            other => return Err(syntax(lineno, format!("unexpected token {other:?}"))),
        }
    }
    cfg.prefix_lists
        .entry(name.to_string())
        .or_default()
        .entries
        .push(PrefixListEntry { prefix, ge, le, permit });
    Ok(())
}

fn parse_static_route(cfg: &mut DeviceConfig, words: &[&str], lineno: usize) -> Result<(), NetError> {
    // ip route P (A.B.C.D | null0)
    let prefix = parse_prefix(
        words.get(2).ok_or_else(|| syntax(lineno, "missing prefix"))?,
        lineno,
    )?;
    let nh = words.get(3).ok_or_else(|| syntax(lineno, "missing next hop"))?;
    let next_hop = if *nh == "null0" {
        None
    } else {
        Some(nh.parse::<Ipv4Addr>().map_err(|_| syntax(lineno, "bad next hop"))?)
    };
    cfg.static_routes.push(StaticRoute { prefix, next_hop });
    Ok(())
}

fn parse_interface_line(
    cfg: &mut DeviceConfig,
    name: &str,
    words: &[&str],
    lineno: usize,
) -> Result<(), NetError> {
    let iface = cfg
        .interfaces
        .iter_mut()
        .find(|i| i.name == name)
        .expect("section tracks an existing interface");
    match (words.first().copied(), words.get(1).copied()) {
        (Some("ip"), Some("address")) => {
            let spec = words.get(2).ok_or_else(|| syntax(lineno, "missing address"))?;
            let (addr, len) = spec
                .split_once('/')
                .ok_or_else(|| syntax(lineno, "expected A.B.C.D/L"))?;
            let addr: Ipv4Addr = addr.parse().map_err(|_| syntax(lineno, "bad address"))?;
            let len: u8 = parse_num(len, "mask length", lineno)?;
            if len > 32 {
                return Err(syntax(lineno, "mask length out of range"));
            }
            iface.addr = addr;
            iface.prefix = Prefix::new(addr, len);
        }
        (Some("ip"), Some("access-group")) => {
            let acl = words.get(2).ok_or_else(|| syntax(lineno, "missing ACL name"))?;
            match words.get(3).copied() {
                Some("in") => iface.acl_in = Some(acl.to_string()),
                Some("out") => iface.acl_out = Some(acl.to_string()),
                _ => return Err(syntax(lineno, "expected in|out")),
            }
        }
        (Some("ip"), Some("ospf")) => {
            if words.get(2).copied() != Some("cost") {
                return Err(syntax(lineno, "expected ip ospf cost N"));
            }
            iface.ospf_cost = Some(parse_num(
                words.get(3).ok_or_else(|| syntax(lineno, "missing cost"))?,
                "cost",
                lineno,
            )?);
        }
        _ => return Err(syntax(lineno, format!("unknown interface command {words:?}"))),
    }
    Ok(())
}

fn parse_acl_addr(word: &str, lineno: usize) -> Result<Prefix, NetError> {
    if word == "any" {
        Ok(Prefix::DEFAULT)
    } else {
        parse_prefix(word, lineno)
    }
}

fn parse_acl_line(
    cfg: &mut DeviceConfig,
    name: &str,
    words: &[&str],
    lineno: usize,
) -> Result<(), NetError> {
    // permit|deny ip SRC DST [proto N] [sport LO HI] [dport LO HI]
    let action = match words.first().copied() {
        Some("permit") => AclAction::Permit,
        Some("deny") => AclAction::Deny,
        _ => return Err(syntax(lineno, "expected permit|deny")),
    };
    if words.get(1).copied() != Some("ip") {
        return Err(syntax(lineno, "expected `ip` after action"));
    }
    let src = parse_acl_addr(words.get(2).ok_or_else(|| syntax(lineno, "missing src"))?, lineno)?;
    let dst = parse_acl_addr(words.get(3).ok_or_else(|| syntax(lineno, "missing dst"))?, lineno)?;
    let mut entry = AclEntry {
        action,
        src,
        dst,
        proto: None,
        src_ports: PortRange::ANY,
        dst_ports: PortRange::ANY,
    };
    let mut i = 4;
    while i < words.len() {
        match words[i] {
            "proto" => {
                entry.proto = Some(parse_num(
                    words.get(i + 1).ok_or_else(|| syntax(lineno, "missing proto"))?,
                    "proto",
                    lineno,
                )?);
                i += 2;
            }
            "sport" => {
                entry.src_ports = PortRange {
                    lo: parse_num(
                        words.get(i + 1).ok_or_else(|| syntax(lineno, "missing sport lo"))?,
                        "sport",
                        lineno,
                    )?,
                    hi: parse_num(
                        words.get(i + 2).ok_or_else(|| syntax(lineno, "missing sport hi"))?,
                        "sport",
                        lineno,
                    )?,
                };
                i += 3;
            }
            "dport" => {
                entry.dst_ports = PortRange {
                    lo: parse_num(
                        words.get(i + 1).ok_or_else(|| syntax(lineno, "missing dport lo"))?,
                        "dport",
                        lineno,
                    )?,
                    hi: parse_num(
                        words.get(i + 2).ok_or_else(|| syntax(lineno, "missing dport hi"))?,
                        "dport",
                        lineno,
                    )?,
                };
                i += 3;
            }
            other => return Err(syntax(lineno, format!("unexpected ACL token {other:?}"))),
        }
    }
    cfg.acls.get_mut(name).expect("section tracks an existing acl").entries.push(entry);
    Ok(())
}

fn parse_route_map_line(
    cfg: &mut DeviceConfig,
    name: &str,
    seq: u32,
    words: &[&str],
    lineno: usize,
) -> Result<(), NetError> {
    let clause = cfg
        .route_maps
        .get_mut(name)
        .and_then(|rm| rm.clauses.iter_mut().find(|c| c.seq == seq))
        .expect("section tracks an existing clause");
    match words.first().copied() {
        Some("match") => match words.get(1).copied() {
            Some("ip") => {
                // match ip address prefix-list NAME
                if words.get(2).copied() != Some("address") || words.get(3).copied() != Some("prefix-list") {
                    return Err(syntax(lineno, "expected match ip address prefix-list NAME"));
                }
                let pl = words.get(4).ok_or_else(|| syntax(lineno, "missing prefix-list name"))?;
                clause.matches.push(MatchCondition::PrefixList(pl.to_string()));
            }
            Some("community") => {
                let c = parse_community(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing community"))?,
                    lineno,
                )?;
                clause.matches.push(MatchCondition::Community(c));
            }
            Some("as-path") => {
                let asn = parse_num(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing ASN"))?,
                    "ASN",
                    lineno,
                )?;
                clause.matches.push(MatchCondition::AsPathContains(asn));
            }
            Some("prefix-len") => {
                let min = parse_num(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing min"))?,
                    "min length",
                    lineno,
                )?;
                let max = parse_num(
                    words.get(3).ok_or_else(|| syntax(lineno, "missing max"))?,
                    "max length",
                    lineno,
                )?;
                clause.matches.push(MatchCondition::PrefixLenRange(min, max));
            }
            other => return Err(syntax(lineno, format!("unknown match {other:?}"))),
        },
        Some("set") => match words.get(1).copied() {
            Some("local-preference") => {
                clause.actions.push(PolicyAction::SetLocalPref(parse_num(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing value"))?,
                    "local-preference",
                    lineno,
                )?));
            }
            Some("med") => {
                clause.actions.push(PolicyAction::SetMed(parse_num(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing value"))?,
                    "med",
                    lineno,
                )?));
            }
            Some("community") => {
                let list = words.get(2).ok_or_else(|| syntax(lineno, "missing communities"))?;
                let comms: Result<Vec<_>, _> =
                    list.split(',').map(|c| parse_community(c, lineno)).collect();
                let comms = comms?;
                if words.get(3).copied() == Some("additive") {
                    for c in comms {
                        clause.actions.push(PolicyAction::Community(CommunityAction::Add(c)));
                    }
                } else {
                    clause.actions.push(PolicyAction::Community(CommunityAction::Set(comms)));
                }
            }
            Some("comm-list") => {
                // set comm-list H:L delete
                let c = parse_community(
                    words.get(2).ok_or_else(|| syntax(lineno, "missing community"))?,
                    lineno,
                )?;
                if words.get(3).copied() != Some("delete") {
                    return Err(syntax(lineno, "expected `delete`"));
                }
                clause.actions.push(PolicyAction::Community(CommunityAction::Delete(c)));
            }
            Some("as-path") => match words.get(2).copied() {
                Some("prepend") => {
                    let asn = parse_num(
                        words.get(3).ok_or_else(|| syntax(lineno, "missing ASN"))?,
                        "ASN",
                        lineno,
                    )?;
                    let count = parse_num(
                        words.get(4).ok_or_else(|| syntax(lineno, "missing count"))?,
                        "count",
                        lineno,
                    )?;
                    clause.actions.push(PolicyAction::AsPath(AsPathAction::Prepend { asn, count }));
                }
                Some("overwrite") => {
                    let list = words.get(3).ok_or_else(|| syntax(lineno, "missing ASNs"))?;
                    // `none` clears the path entirely (the DCN's AS_PATH
                    // overwrite leaves only the ASN prepended on export).
                    let asns: Vec<u32> = if *list == "none" {
                        Vec::new()
                    } else {
                        list.split(',')
                            .map(|a| parse_num(a, "ASN", lineno))
                            .collect::<Result<_, _>>()?
                    };
                    clause.actions.push(PolicyAction::AsPath(AsPathAction::Overwrite(asns)));
                }
                other => return Err(syntax(lineno, format!("unknown set as-path {other:?}"))),
            },
            other => return Err(syntax(lineno, format!("unknown set {other:?}"))),
        },
        other => return Err(syntax(lineno, format!("unknown route-map command {other:?}"))),
    }
    Ok(())
}

fn parse_bgp_line(cfg: &mut DeviceConfig, words: &[&str], lineno: usize) -> Result<(), NetError> {
    let bgp = cfg.bgp.as_mut().expect("section tracks an existing bgp process");
    match words.first().copied() {
        Some("router-id") => {
            bgp.router_id = words
                .get(1)
                .ok_or_else(|| syntax(lineno, "missing router-id"))?
                .parse()
                .map_err(|_| syntax(lineno, "bad router-id"))?;
        }
        Some("maximum-paths") => {
            bgp.max_ecmp = parse_num(
                words.get(1).ok_or_else(|| syntax(lineno, "missing value"))?,
                "maximum-paths",
                lineno,
            )?;
        }
        Some("network") => {
            bgp.networks.push(Network {
                prefix: parse_prefix(
                    words.get(1).ok_or_else(|| syntax(lineno, "missing prefix"))?,
                    lineno,
                )?,
            });
        }
        Some("aggregate-address") => {
            let prefix = parse_prefix(
                words.get(1).ok_or_else(|| syntax(lineno, "missing prefix"))?,
                lineno,
            )?;
            let mut agg = Aggregate {
                prefix,
                summary_only: false,
                communities: Vec::new(),
            };
            let mut i = 2;
            while i < words.len() {
                match words[i] {
                    "summary-only" => {
                        agg.summary_only = true;
                        i += 1;
                    }
                    "community" => {
                        let list = words.get(i + 1).ok_or_else(|| syntax(lineno, "missing communities"))?;
                        for c in list.split(',') {
                            agg.communities.push(parse_community(c, lineno)?);
                        }
                        i += 2;
                    }
                    other => return Err(syntax(lineno, format!("unexpected token {other:?}"))),
                }
            }
            bgp.aggregates.push(agg);
        }
        Some("conditional-advertise") => {
            // conditional-advertise P (exist|non-exist) P2
            let advertise = parse_prefix(
                words.get(1).ok_or_else(|| syntax(lineno, "missing prefix"))?,
                lineno,
            )?;
            let when_present = match words.get(2).copied() {
                Some("exist") => true,
                Some("non-exist") => false,
                other => return Err(syntax(lineno, format!("expected exist|non-exist, got {other:?}"))),
            };
            let condition = parse_prefix(
                words.get(3).ok_or_else(|| syntax(lineno, "missing condition prefix"))?,
                lineno,
            )?;
            bgp.conditional.push(s2_net_conditional(advertise, condition, when_present));
        }
        Some("redistribute") => {
            let proto = match words.get(1).copied() {
                Some("connected") => Protocol::Connected,
                Some("static") => Protocol::Static,
                Some("ospf") => Protocol::Ospf,
                other => return Err(syntax(lineno, format!("cannot redistribute {other:?}"))),
            };
            bgp.redistribute.push(proto);
        }
        Some("neighbor") => {
            let peer: Ipv4Addr = words
                .get(1)
                .ok_or_else(|| syntax(lineno, "missing neighbor address"))?
                .parse()
                .map_err(|_| syntax(lineno, "bad neighbor address"))?;
            match words.get(2).copied() {
                Some("remote-as") => {
                    let asn = parse_num(
                        words.get(3).ok_or_else(|| syntax(lineno, "missing ASN"))?,
                        "ASN",
                        lineno,
                    )?;
                    bgp.neighbors.push(BgpNeighbor {
                        peer,
                        remote_as: asn,
                        import_policy: None,
                        export_policy: None,
                        remove_private_as: false,
                    });
                }
                Some("route-map") => {
                    let rm = words.get(3).ok_or_else(|| syntax(lineno, "missing route-map"))?;
                    let dir = words.get(4).copied();
                    let n = bgp
                        .neighbors
                        .iter_mut()
                        .find(|n| n.peer == peer)
                        .ok_or_else(|| syntax(lineno, "route-map before remote-as"))?;
                    match dir {
                        Some("in") => n.import_policy = Some(rm.to_string()),
                        Some("out") => n.export_policy = Some(rm.to_string()),
                        _ => return Err(syntax(lineno, "expected in|out")),
                    }
                }
                Some("remove-private-as") => {
                    let n = bgp
                        .neighbors
                        .iter_mut()
                        .find(|n| n.peer == peer)
                        .ok_or_else(|| syntax(lineno, "remove-private-as before remote-as"))?;
                    n.remove_private_as = true;
                }
                other => return Err(syntax(lineno, format!("unknown neighbor command {other:?}"))),
            }
        }
        other => return Err(syntax(lineno, format!("unknown bgp command {other:?}"))),
    }
    Ok(())
}

/// Constructor shim (keeps the match arm compact).
fn s2_net_conditional(
    advertise: Prefix,
    condition: Prefix,
    when_present: bool,
) -> crate::config::ConditionalAdvertisement {
    crate::config::ConditionalAdvertisement {
        advertise,
        condition,
        when_present,
    }
}

fn parse_ospf_line(cfg: &mut DeviceConfig, words: &[&str], lineno: usize) -> Result<(), NetError> {
    let ospf = cfg.ospf.as_mut().expect("section tracks an existing ospf process");
    match words.first().copied() {
        Some("interface") => {
            let name = words.get(1).ok_or_else(|| syntax(lineno, "missing interface"))?;
            ospf.interfaces.push(name.to_string());
        }
        Some("default-cost") => {
            ospf.default_cost = parse_num(
                words.get(1).ok_or_else(|| syntax(lineno, "missing cost"))?,
                "cost",
                lineno,
            )?;
        }
        other => return Err(syntax(lineno, format!("unknown ospf command {other:?}"))),
    }
    Ok(())
}

/// Emits `config` as vendor-A text. `parse(emit(c)) == c` for valid configs.
pub fn emit(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(&mut out, format!("hostname {}", cfg.hostname));
    push(&mut out, "!".into());

    for i in &cfg.interfaces {
        push(&mut out, format!("interface {}", i.name));
        push(&mut out, format!(" ip address {}/{}", i.addr, i.prefix.len()));
        if let Some(acl) = &i.acl_in {
            push(&mut out, format!(" ip access-group {acl} in"));
        }
        if let Some(acl) = &i.acl_out {
            push(&mut out, format!(" ip access-group {acl} out"));
        }
        if let Some(cost) = i.ospf_cost {
            push(&mut out, format!(" ip ospf cost {cost}"));
        }
        push(&mut out, "!".into());
    }

    for (name, pl) in &cfg.prefix_lists {
        for e in &pl.entries {
            let mut line = format!(
                "ip prefix-list {name} {} {}",
                if e.permit { "permit" } else { "deny" },
                e.prefix
            );
            if let Some(ge) = e.ge {
                line.push_str(&format!(" ge {ge}"));
            }
            if let Some(le) = e.le {
                line.push_str(&format!(" le {le}"));
            }
            push(&mut out, line);
        }
    }

    for (name, acl) in &cfg.acls {
        push(&mut out, format!("ip access-list {name}"));
        for e in &acl.entries {
            let mut line = format!(
                " {} ip {} {}",
                match e.action {
                    AclAction::Permit => "permit",
                    AclAction::Deny => "deny",
                },
                if e.src == Prefix::DEFAULT { "any".to_string() } else { e.src.to_string() },
                if e.dst == Prefix::DEFAULT { "any".to_string() } else { e.dst.to_string() },
            );
            if let Some(p) = e.proto {
                line.push_str(&format!(" proto {p}"));
            }
            if !e.src_ports.is_any() {
                line.push_str(&format!(" sport {} {}", e.src_ports.lo, e.src_ports.hi));
            }
            if !e.dst_ports.is_any() {
                line.push_str(&format!(" dport {} {}", e.dst_ports.lo, e.dst_ports.hi));
            }
            push(&mut out, line);
        }
        push(&mut out, "!".into());
    }

    for (name, rm) in &cfg.route_maps {
        for clause in &rm.clauses {
            push(
                &mut out,
                format!(
                    "route-map {name} {} {}",
                    match clause.disposition {
                        RouteMapDisposition::Permit => "permit",
                        RouteMapDisposition::Deny => "deny",
                    },
                    clause.seq
                ),
            );
            for m in &clause.matches {
                match m {
                    MatchCondition::PrefixList(pl) => {
                        push(&mut out, format!(" match ip address prefix-list {pl}"))
                    }
                    MatchCondition::Community(c) => {
                        push(&mut out, format!(" match community {}", community_string(*c)))
                    }
                    MatchCondition::AsPathContains(a) => push(&mut out, format!(" match as-path {a}")),
                    MatchCondition::PrefixLenRange(lo, hi) => {
                        push(&mut out, format!(" match prefix-len {lo} {hi}"))
                    }
                    MatchCondition::AsPathEmpty | MatchCondition::Protocol(_) => {
                        // Not expressible in vendor-A syntax; used only by
                        // internally-generated policies.
                    }
                }
            }
            for a in &clause.actions {
                match a {
                    PolicyAction::SetLocalPref(v) => push(&mut out, format!(" set local-preference {v}")),
                    PolicyAction::SetMed(v) => push(&mut out, format!(" set med {v}")),
                    PolicyAction::Community(CommunityAction::Add(c)) => {
                        push(&mut out, format!(" set community {} additive", community_string(*c)))
                    }
                    PolicyAction::Community(CommunityAction::Delete(c)) => {
                        push(&mut out, format!(" set comm-list {} delete", community_string(*c)))
                    }
                    PolicyAction::Community(CommunityAction::Set(cs)) => {
                        let list: Vec<String> = cs.iter().map(|c| community_string(*c)).collect();
                        push(&mut out, format!(" set community {}", list.join(",")));
                    }
                    PolicyAction::AsPath(AsPathAction::Prepend { asn, count }) => {
                        push(&mut out, format!(" set as-path prepend {asn} {count}"))
                    }
                    PolicyAction::AsPath(AsPathAction::Overwrite(asns)) => {
                        let list = if asns.is_empty() {
                            "none".to_string()
                        } else {
                            asns.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
                        };
                        push(&mut out, format!(" set as-path overwrite {list}"));
                    }
                    PolicyAction::AsPath(AsPathAction::RemovePrivate(_)) => {
                        // Expressed per-neighbor in vendor A, not in route maps.
                    }
                }
            }
        }
        push(&mut out, "!".into());
    }

    if let Some(bgp) = &cfg.bgp {
        push(&mut out, format!("router bgp {}", bgp.asn));
        push(&mut out, format!(" router-id {}", bgp.router_id));
        if bgp.max_ecmp != 1 {
            push(&mut out, format!(" maximum-paths {}", bgp.max_ecmp));
        }
        for n in &bgp.networks {
            push(&mut out, format!(" network {}", n.prefix));
        }
        for a in &bgp.aggregates {
            let mut line = format!(" aggregate-address {}", a.prefix);
            if a.summary_only {
                line.push_str(" summary-only");
            }
            if !a.communities.is_empty() {
                let list: Vec<String> = a.communities.iter().map(|c| community_string(*c)).collect();
                line.push_str(&format!(" community {}", list.join(",")));
            }
            push(&mut out, line);
        }
        for p in &bgp.redistribute {
            let name = match p {
                Protocol::Connected => "connected",
                Protocol::Static => "static",
                Protocol::Ospf => "ospf",
                _ => continue,
            };
            push(&mut out, format!(" redistribute {name}"));
        }
        for c in &bgp.conditional {
            push(
                &mut out,
                format!(
                    " conditional-advertise {} {} {}",
                    c.advertise,
                    if c.when_present { "exist" } else { "non-exist" },
                    c.condition
                ),
            );
        }
        for n in &bgp.neighbors {
            push(&mut out, format!(" neighbor {} remote-as {}", n.peer, n.remote_as));
            if let Some(rm) = &n.import_policy {
                push(&mut out, format!(" neighbor {} route-map {rm} in", n.peer));
            }
            if let Some(rm) = &n.export_policy {
                push(&mut out, format!(" neighbor {} route-map {rm} out", n.peer));
            }
            if n.remove_private_as {
                push(&mut out, format!(" neighbor {} remove-private-as", n.peer));
            }
        }
        push(&mut out, "!".into());
    }

    if let Some(ospf) = &cfg.ospf {
        push(&mut out, "router ospf".into());
        push(&mut out, format!(" default-cost {}", ospf.default_cost));
        for i in &ospf.interfaces {
            push(&mut out, format!(" interface {i}"));
        }
        push(&mut out, "!".into());
    }

    for s in &cfg.static_routes {
        match s.next_hop {
            Some(nh) => push(&mut out, format!("ip route {} {}", s.prefix, nh)),
            None => push(&mut out, format!("ip route {} null0", s.prefix)),
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::community;

    const SAMPLE: &str = "\
hostname tor0
!
interface eth0
 ip address 10.0.0.1/31
 ip access-group FILTER in
 ip ospf cost 10
!
interface lo0
 ip address 1.1.1.1/32
!
ip prefix-list PL permit 10.0.0.0/8 ge 16 le 24
ip prefix-list PL deny 0.0.0.0/0
ip access-list FILTER
 deny ip any 10.9.0.0/16 proto 6 dport 22 22
 permit ip any any
!
route-map RM permit 10
 match ip address prefix-list PL
 match community 65000:1
 set local-preference 200
 set community 65000:2 additive
 set as-path prepend 65001 3
route-map RM deny 20
!
router bgp 65001
 router-id 1.1.1.1
 maximum-paths 64
 network 10.1.0.0/24
 aggregate-address 10.0.0.0/8 summary-only community 65000:9
 redistribute ospf
 neighbor 10.0.0.0 remote-as 65002
 neighbor 10.0.0.0 route-map RM in
 neighbor 10.0.0.0 route-map RM out
 neighbor 10.0.0.0 remove-private-as
!
router ospf
 default-cost 10
 interface eth0
!
ip route 0.0.0.0/0 10.0.0.0
";

    #[test]
    fn parses_full_sample() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.hostname, "tor0");
        assert_eq!(cfg.interfaces.len(), 2);
        assert_eq!(cfg.interfaces[0].acl_in.as_deref(), Some("FILTER"));
        assert_eq!(cfg.interfaces[0].ospf_cost, Some(10));
        assert_eq!(cfg.prefix_lists["PL"].entries.len(), 2);
        assert_eq!(cfg.acls["FILTER"].entries.len(), 2);
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 65001);
        assert_eq!(bgp.max_ecmp, 64);
        assert_eq!(bgp.networks.len(), 1);
        assert_eq!(bgp.aggregates[0].communities, vec![community(65000, 9)]);
        assert!(bgp.aggregates[0].summary_only);
        assert_eq!(bgp.neighbors.len(), 1);
        assert!(bgp.neighbors[0].remove_private_as);
        assert_eq!(bgp.redistribute, vec![Protocol::Ospf]);
        assert_eq!(cfg.route_maps["RM"].clauses.len(), 2);
        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(cfg.ospf.as_ref().unwrap().interfaces, vec!["eth0"]);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let cfg = parse(SAMPLE).unwrap();
        let text = emit(&cfg);
        let cfg2 = parse(&text).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "hostname x\nbogus command\n";
        match parse(bad) {
            Err(NetError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn route_map_before_remote_as_is_rejected() {
        let bad = "hostname x\nrouter bgp 1\n neighbor 1.2.3.4 route-map RM in\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn indented_line_outside_section_is_rejected() {
        let bad = "hostname x\n ip address 1.2.3.4/32\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn null0_static_route() {
        let cfg = parse("hostname x\nip route 10.0.0.0/8 null0\n").unwrap();
        assert_eq!(cfg.static_routes[0].next_hop, None);
    }

    #[test]
    fn missing_hostname_is_rejected() {
        assert!(parse("router ospf\n default-cost 5\n").is_err());
    }
}
