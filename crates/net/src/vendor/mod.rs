//! Vendor configuration dialects.
//!
//! The S2 paper plugs into Batfish's multi-vendor parsing front end; this
//! crate provides the same role with two synthetic dialects:
//!
//! * [`vendor_a`] — a line-oriented, IOS-flavoured dialect,
//! * [`vendor_b`] — a braced, JunOS-flavoured dialect.
//!
//! Both parse into the same vendor-independent [`DeviceConfig`]; both have
//! emitters so the topology generators can synthesize realistic
//! configuration files and the test suite can check parse∘emit = id. The
//! two vendors also differ *semantically* (see
//! [`crate::config::VendorQuirks`]), which the routing crate honours.

pub mod util;
pub mod vendor_a;
pub mod vendor_b;

use crate::config::{DeviceConfig, Vendor};
use crate::error::NetError;

/// Parses a configuration file, auto-detecting the dialect.
///
/// Vendor A files start with `hostname <name>`, vendor B files with
/// `host-name <name>;`.
pub fn parse(text: &str) -> Result<DeviceConfig, NetError> {
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            continue;
        }
        if line.starts_with("hostname ") {
            return vendor_a::parse(text);
        }
        if line.starts_with("host-name ") {
            return vendor_b::parse(text);
        }
        break;
    }
    Err(NetError::Syntax {
        line: 1,
        message: "cannot detect vendor dialect (expected `hostname` or `host-name`)".into(),
    })
}

/// Emits `config` in its own vendor's dialect.
pub fn emit(config: &DeviceConfig) -> String {
    match config.vendor {
        Vendor::A => vendor_a::emit(config),
        Vendor::B => vendor_b::emit(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BgpProcess, Vendor};
    use crate::ip::Ipv4Addr;

    #[test]
    fn detect_vendor_a() {
        let cfg = parse("!\nhostname foo\n").unwrap();
        assert_eq!(cfg.hostname, "foo");
        assert_eq!(cfg.vendor, Vendor::A);
    }

    #[test]
    fn detect_vendor_b() {
        let cfg = parse("# comment\nhost-name bar;\n").unwrap();
        assert_eq!(cfg.hostname, "bar");
        assert_eq!(cfg.vendor, Vendor::B);
    }

    #[test]
    fn detect_fails_on_garbage() {
        assert!(parse("interface eth0\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn emit_dispatches_on_vendor() {
        let mut cfg = crate::config::DeviceConfig::new("x", Vendor::A);
        cfg.bgp = Some(BgpProcess::new(65000, Ipv4Addr::new(1, 1, 1, 1)));
        assert!(emit(&cfg).starts_with("hostname x"));
        cfg.vendor = Vendor::B;
        assert!(emit(&cfg).starts_with("host-name x;"));
    }
}
