//! Shared lexical helpers for the vendor parsers.

use crate::error::NetError;
use crate::ip::Prefix;
use crate::policy::{community, Community};

/// Parses `high:low` community notation.
pub fn parse_community(s: &str, line: usize) -> Result<Community, NetError> {
    let (hi, lo) = s.split_once(':').ok_or_else(|| NetError::Syntax {
        line,
        message: format!("expected community high:low, got {s:?}"),
    })?;
    let hi: u16 = hi.parse().map_err(|_| NetError::Syntax {
        line,
        message: format!("bad community high part {hi:?}"),
    })?;
    let lo: u16 = lo.parse().map_err(|_| NetError::Syntax {
        line,
        message: format!("bad community low part {lo:?}"),
    })?;
    Ok(community(hi, lo))
}

/// Parses a prefix, converting the error into a positioned syntax error.
pub fn parse_prefix(s: &str, line: usize) -> Result<Prefix, NetError> {
    s.parse().map_err(|_| NetError::Syntax {
        line,
        message: format!("bad prefix {s:?}"),
    })
}

/// Parses an integer, converting the error into a positioned syntax error.
pub fn parse_num<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T, NetError> {
    s.parse().map_err(|_| NetError::Syntax {
        line,
        message: format!("bad {what} {s:?}"),
    })
}

/// A positioned syntax error, shorthand.
pub fn syntax(line: usize, message: impl Into<String>) -> NetError {
    NetError::Syntax {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_parses() {
        assert_eq!(parse_community("65000:42", 1).unwrap(), community(65000, 42));
        assert!(parse_community("65000", 1).is_err());
        assert!(parse_community("x:1", 1).is_err());
        assert!(parse_community("1:99999", 1).is_err());
    }

    #[test]
    fn numbers_carry_line_numbers() {
        let err = parse_num::<u8>("300", "ttl", 7).unwrap_err();
        assert!(matches!(err, NetError::Syntax { line: 7, .. }));
    }
}
