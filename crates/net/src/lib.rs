//! # s2-net
//!
//! Network-model substrate for the S2 distributed configuration verifier.
//!
//! This crate provides everything "below" the routing protocols:
//!
//! * IPv4 addresses and prefixes ([`ip`]), including a longest-prefix-match
//!   trie ([`trie`]) shared by RIB lookups and FIB construction,
//! * the physical topology graph ([`topology`]): nodes, interfaces, links,
//! * the vendor-independent (VI) configuration model ([`config`]): BGP
//!   process, route maps ([`policy`]), ACLs ([`acl`]), aggregation,
//! * parsers for two synthetic vendor dialects with deliberately divergent
//!   vendor-specific behaviours ([`vendor`]), mirroring how the paper's
//!   prototype reuses Batfish's multi-vendor parsing front end.
//!
//! The model is deliberately free of any distributed-systems concern: the
//! partitioner, runtime and verifier crates all consume these types without
//! this crate knowing about workers or shards.

#![deny(missing_docs)]

pub mod acl;
pub mod config;
pub mod error;
pub mod ip;
pub mod policy;
pub mod topology;
pub mod trie;
pub mod vendor;

pub use acl::{Acl, AclAction, AclEntry};
pub use config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, OspfProcess};
pub use error::NetError;
pub use ip::{Ipv4Addr, Prefix};
pub use policy::{
    AsPathAction, CommunityAction, MatchCondition, PolicyAction, RouteMap, RouteMapClause,
    RouteMapDisposition,
};
pub use topology::{InterfaceId, Link, NodeId, Topology};
pub use trie::PrefixTrie;
