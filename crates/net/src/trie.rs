//! A binary prefix trie keyed by [`Prefix`].
//!
//! Used for longest-prefix-match FIB lookups, for finding the contributing
//! routes of an aggregate, and for building the prefix dependency graph.
//! The trie is a plain binary radix structure: each level consumes one bit
//! of the network address, so lookups are `O(32)` regardless of table size.

use crate::ip::{Ipv4Addr, Prefix};

/// A set/map of prefixes supporting exact and longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value stored exactly at `prefix`.
    ///
    /// Interior nodes are left in place; this trades a little memory for
    /// cheap removals, which only the incremental tests exercise.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the value stored exactly at `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable variant of [`get`](Self::get).
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, together with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &T)> = self.root.value.as_ref().map(|v| (Prefix::DEFAULT, v));
        for i in 0..32u8 {
            let b = addr.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((Prefix::new(addr, i + 1), v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// The most specific stored prefix that covers `prefix` (possibly
    /// `prefix` itself).
    pub fn longest_cover(&self, prefix: Prefix) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &T)> = self.root.value.as_ref().map(|v| (Prefix::DEFAULT, v));
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((Prefix::new(prefix.addr(), i + 1), v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Visits every stored prefix covered by `prefix` (including `prefix`
    /// itself if stored), in no particular order.
    pub fn for_each_covered<F: FnMut(Prefix, &T)>(&self, prefix: Prefix, mut f: F) {
        // Walk down to the subtree rooted at `prefix`, then enumerate it.
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return,
            }
        }
        visit(node, prefix.addr().0, prefix.len(), &mut f);

        fn visit<T>(node: &Node<T>, bits: u32, depth: u8, f: &mut impl FnMut(Prefix, &T)) {
            if let Some(v) = node.value.as_ref() {
                f(Prefix::new(Ipv4Addr(bits), depth), v);
            }
            if depth == 32 {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                visit(child, bits, depth + 1, f);
            }
            if let Some(child) = node.children[1].as_deref() {
                visit(child, bits | (1 << (31 - depth)), depth + 1, f);
            }
        }
    }

    /// Iterates over all `(prefix, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        collect(&self.root, 0, 0, &mut out);
        return out.into_iter();

        fn collect<'a, T>(
            node: &'a Node<T>,
            bits: u32,
            depth: u8,
            out: &mut Vec<(Prefix, &'a T)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(Ipv4Addr(bits), depth), v));
            }
            if depth == 32 {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                collect(child, bits, depth + 1, out);
            }
            if let Some(child) = node.children[1].as_deref() {
                collect(child, bits | (1 << (31 - depth)), depth + 1, out);
            }
        }
    }

    /// Returns true if any stored prefix strictly more specific than
    /// `prefix` is covered by it.
    pub fn has_more_specific(&self, prefix: Prefix) -> bool {
        let mut found = false;
        self.for_each_covered(prefix, |p, _| {
            if p != prefix {
                found = true;
            }
        });
        found
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        assert_eq!(t.lookup(a("10.1.2.3")).unwrap(), (p("10.1.0.0/16"), &"sixteen"));
        assert_eq!(t.lookup(a("10.200.0.1")).unwrap(), (p("10.0.0.0/8"), &"eight"));
        assert_eq!(t.lookup(a("192.168.0.1")).unwrap(), (p("0.0.0.0/0"), &"default"));
    }

    #[test]
    fn lpm_without_default_can_miss() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup(a("11.0.0.1")).is_none());
    }

    #[test]
    fn longest_cover_finds_ancestor() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        assert_eq!(t.longest_cover(p("10.1.2.0/24")).unwrap(), (p("10.1.0.0/16"), &16));
        assert_eq!(t.longest_cover(p("10.1.0.0/16")).unwrap(), (p("10.1.0.0/16"), &16));
        assert_eq!(t.longest_cover(p("10.2.0.0/16")).unwrap(), (p("10.0.0.0/8"), &8));
        assert!(t.longest_cover(p("11.0.0.0/16")).is_none());
    }

    #[test]
    fn covered_enumeration() {
        let mut t = PrefixTrie::new();
        for (pref, v) in [("10.1.0.0/16", 1), ("10.1.2.0/24", 2), ("10.2.0.0/16", 3), ("11.0.0.0/8", 4)] {
            t.insert(p(pref), v);
        }
        let mut seen = Vec::new();
        t.for_each_covered(p("10.0.0.0/8"), |pref, v| seen.push((pref, *v)));
        seen.sort();
        assert_eq!(seen, vec![(p("10.1.0.0/16"), 1), (p("10.1.2.0/24"), 2), (p("10.2.0.0/16"), 3)]);
        assert!(t.has_more_specific(p("10.1.0.0/16")));
        assert!(!t.has_more_specific(p("10.1.2.0/24")));
        assert!(!t.has_more_specific(p("12.0.0.0/8")));
    }

    #[test]
    fn iter_returns_all_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.168.0.0/16"), ());
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ());
        let got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(got, vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")]);
    }

    #[test]
    fn default_route_is_storable() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 0);
        assert_eq!(t.lookup(a("1.2.3.4")).unwrap().0, Prefix::DEFAULT);
        assert_eq!(t.get(Prefix::DEFAULT), Some(&0));
    }

    proptest! {
        /// LPM must agree with a linear scan over the stored prefixes.
        #[test]
        fn prop_lpm_matches_linear_scan(
            entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..40),
            probe in any::<u32>(),
        ) {
            let mut t = PrefixTrie::new();
            let mut stored = Vec::new();
            for (bits, len) in entries {
                let pref = Prefix::new(Ipv4Addr(bits), len);
                t.insert(pref, pref);
                stored.push(pref);
            }
            let addr = Ipv4Addr(probe);
            let expect = stored
                .iter()
                .filter(|p| p.contains_addr(addr))
                .max_by_key(|p| p.len())
                .copied();
            prop_assert_eq!(t.lookup(addr).map(|(p, _)| p), expect);
        }

        /// Everything inserted is found again, exactly once, by `iter`.
        #[test]
        fn prop_iter_is_exact(entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..40)) {
            let mut t = PrefixTrie::new();
            let mut expect: Vec<Prefix> = Vec::new();
            for (bits, len) in entries {
                let pref = Prefix::new(Ipv4Addr(bits), len);
                if t.insert(pref, ()).is_none() {
                    expect.push(pref);
                }
            }
            expect.sort();
            let got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(t.len(), t.iter().count());
        }
    }
}
