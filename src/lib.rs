//! # s2-suite
//!
//! Umbrella crate for the S2 workspace: hosts the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/`. The
//! actual functionality lives in the member crates; start with the [`s2`]
//! crate for the verifier API, and see `README.md` / `DESIGN.md` for the
//! architecture.

pub use s2;
pub use s2_baselines;
pub use s2_bdd;
pub use s2_dataplane;
pub use s2_net;
pub use s2_partition;
pub use s2_routing;
pub use s2_runtime;
pub use s2_shard;
pub use s2_topogen;
