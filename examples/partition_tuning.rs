//! Partition tuning: compare the §5.6 partition schemes on one topology —
//! edge cut, load imbalance, and what they cost a real verification run.
//!
//! ```text
//! cargo run --example partition_tuning --release
//! ```

use s2::{S2Options, S2Verifier, Scheme, VerificationRequest};
use s2_partition::estimate::estimate_loads;
use s2_partition::schemes::compute;
use s2_routing::NetworkModel;
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};
use std::time::Instant;

fn main() {
    let k = 6;
    let workers = 4;
    let ft = generate(FatTreeParams::new(k));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).expect("valid model");
    let mut endpoints = Vec::new();
    for p in 0..k {
        for e in 0..k / 2 {
            endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
        }
    }
    let request =
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap());
    let loads = estimate_loads(&model.topology);

    println!("FatTree{k} on {workers} workers — partition scheme comparison\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "scheme", "cut", "imbalance", "time", "peak/worker", "verdict"
    );

    for scheme in [
        Scheme::Metis,
        Scheme::Random { seed: 42 },
        Scheme::Expert,
        Scheme::Imbalanced,
        Scheme::CommHeavy,
    ] {
        let partition = compute(&model.topology, workers, scheme);
        let cut = partition.edge_cut(&model.topology);
        let imbalance = partition.load_imbalance(&loads);

        let t0 = Instant::now();
        let verifier = S2Verifier::with_partition(
            model.clone(),
            partition,
            &S2Options {
                workers,
                shards: 5,
                ..Default::default()
            },
        )
        .expect("fleet spawns");
        let report = verifier.verify(&request).expect("verification completes");
        verifier.shutdown();
        let elapsed = t0.elapsed();

        assert!(report.dpv.unreachable_pairs.is_empty(), "results are scheme-invariant");
        println!(
            "{:<12} {:>8} {:>10.2} {:>8.0}ms {:>12} {:>10}",
            scheme.name(),
            cut,
            imbalance,
            elapsed.as_secs_f64() * 1e3,
            format!("{}KiB", report.peak_worker_memory() / 1024),
            if report.all_clear() { "clean" } else { "violations" },
        );
    }

    println!(
        "\nthe verdicts are identical under every scheme (results never depend \
         on the partition); what changes is the peak per-worker memory — the \
         imbalanced scheme concentrates ~3/4 of the network on one worker — \
         and, at scale, the runtime. This is the paper's §5.6 finding: balance \
         matters, communication volume barely does."
    );
}
