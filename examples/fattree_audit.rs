//! FatTree audit: plant three classic misconfigurations into a healthy
//! FatTree and show that S2 catches each one — the verifier's reason for
//! existing (§2 of the paper).
//!
//! ```text
//! cargo run --example fattree_audit
//! ```

use s2::{S2Options, S2Verifier, VerificationRequest};
use s2_routing::NetworkModel;
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};
use s2_topogen::inject;

fn request_for(ft: &FatTree) -> VerificationRequest {
    let k = ft.params.k;
    let endpoints: Vec<_> = (0..k)
        .flat_map(|p| (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)])))
        .collect();
    VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap())
}

fn verify(ft: &FatTree, configs: Vec<s2_net::config::DeviceConfig>) -> s2::S2Report {
    let model = NetworkModel::build(ft.topology.clone(), configs).expect("model builds");
    let verifier = S2Verifier::new(
        model,
        &S2Options {
            workers: 2,
            shards: 4,
            ..Default::default()
        },
    )
    .expect("fleet spawns");
    let report = verifier.verify(&request_for(ft)).expect("verification completes");
    verifier.shutdown();
    report
}

fn main() {
    let ft = generate(FatTreeParams::new(4));

    println!("--- baseline: healthy FatTree4 ---");
    let healthy = verify(&ft, ft.configs.clone());
    assert!(healthy.all_clear());
    println!("clean: {}\n", healthy.summary());

    println!("--- bug 1: forgotten network statement on pod0-edge0 ---");
    let mut cfgs = ft.configs.clone();
    inject::drop_network_statement(&mut cfgs, "pod0-edge0", FatTree::server_prefix(0, 0));
    let r1 = verify(&ft, cfgs);
    assert!(!r1.dpv.unreachable_pairs.is_empty());
    println!(
        "CAUGHT: {} unreachable pairs (all targeting pod0-edge0), {} sources blackhole\n",
        r1.dpv.unreachable_pairs.len(),
        r1.dpv.blackholes
    );

    println!("--- bug 2: over-broad ACL on core0 dropping 10.0.0.0/24 ---");
    let mut cfgs = ft.configs.clone();
    inject::acl_block_dst(&mut cfgs, "core0", "10.0.0.0/24".parse().unwrap());
    let r2 = verify(&ft, cfgs);
    // ECMP routes around the bad core, so reachability still holds — but
    // the same headers arrive on some paths and die on others: a
    // multipath-consistency violation, exactly what that property is for.
    assert!(!r2.dpv.multipath_violations.is_empty());
    println!(
        "CAUGHT: multipath inconsistency at {} sources ({} blackhole finals) — \
         traffic survives only because ECMP routes around core0\n",
        r2.dpv.multipath_violations.len(),
        r2.dpv.blackholes
    );

    println!("--- bug 3: wrong remote-as on a pod0-edge0 uplink ---");
    let mut cfgs = ft.configs.clone();
    inject::break_session(&mut cfgs, "pod0-edge0", 0);
    let model = NetworkModel::build(ft.topology.clone(), cfgs).expect("model builds");
    println!(
        "CAUGHT at model build: {} session diagnostics, e.g. {:?}",
        model.session_diagnostics.len(),
        model.session_diagnostics.first().expect("at least one")
    );
    let verifier = S2Verifier::new(
        model,
        &S2Options {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("fleet spawns");
    let r3 = verifier.verify(&request_for(&ft)).expect("verification completes");
    verifier.shutdown();
    // The network still verifies reachable (the other uplink carries the
    // traffic), but the report is not "all clear" because of the session
    // diagnostics.
    assert!(!r3.all_clear());
    println!(
        "report is not clean: {} diagnostics, reachability {}/{}",
        r3.session_diagnostics.len(),
        r3.dpv.reachable_pairs,
        r3.dpv.reachable_pairs + r3.dpv.unreachable_pairs.len()
    );
}
