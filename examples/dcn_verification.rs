//! DCN verification: the paper's §5.3 scenario on the synthetic stand-in
//! for a hyper-scale datacenter — mixed 3/5-layer Clos clusters, per-layer
//! ASNs with AS_PATH overwrite, summary-only aggregation with community
//! tagging, mixed vendors, per-switch ECMP variation.
//!
//! The configs are emitted as vendor text files and re-ingested through
//! the parsing front end, exercising the full Batfish-style pipeline.
//!
//! ```text
//! cargo run --example dcn_verification
//! ```

use s2::{ingest, S2Options, S2Verifier, VerificationRequest};
use s2_topogen::dcn::{generate, Dcn, DcnParams};
use s2_topogen::emit_configs;

fn main() {
    // Generate the network and round-trip it through vendor text.
    let dcn = generate(DcnParams::small());
    let texts = emit_configs(&dcn.configs);
    println!(
        "generated {} switches across {} clusters (+{} spines, {} borders)",
        dcn.topology.node_count(),
        dcn.params.clusters.len(),
        dcn.spines.len(),
        dcn.borders.len()
    );
    let vendor_a = dcn.configs.iter().filter(|c| c.vendor == s2_net::config::Vendor::A).count();
    println!(
        "vendor mix: {} vendor-A (IOS-flavoured), {} vendor-B (JunOS-flavoured) configs",
        vendor_a,
        dcn.configs.len() - vendor_a
    );

    // Show a slice of each dialect.
    let sample_a = texts.iter().find(|(h, _)| h == "cl0-l0-s0").expect("tor exists");
    let sample_b = texts.iter().find(|(h, _)| h == "cl0-l0-s1").expect("tor exists");
    println!("\n--- {} (vendor A) ---", sample_a.0);
    for line in sample_a.1.lines().take(8) {
        println!("  {line}");
    }
    println!("--- {} (vendor B) ---", sample_b.0);
    for line in sample_b.1.lines().take(8) {
        println!("  {line}");
    }

    // Ingest the text configs (parse + L3 adjacency inference + session
    // establishment) and verify ToR-to-ToR reachability.
    let model = ingest(
        dcn.topology.clone(),
        &texts.into_iter().map(|(_, t)| t).collect::<Vec<_>>(),
    )
    .expect("emitted configurations re-parse");

    let mut endpoints = Vec::new();
    for (c, tors) in dcn.tors.iter().enumerate() {
        for (t, &tor) in tors.iter().enumerate() {
            endpoints.push((tor, vec![Dcn::server_prefix(c, t)]));
        }
    }
    let n = endpoints.len();
    let request =
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/7".parse().unwrap());

    let opts = S2Options {
        workers: 4,
        shards: 6,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &opts).expect("model partitions");
    let report = verifier.verify(&request).expect("verification completes");
    verifier.shutdown();

    println!("\n{}", report.summary());
    assert_eq!(report.dpv.reachable_pairs, n * (n - 1));
    println!("\nToR-to-ToR reachability HOLDS across clusters ({} pairs)", n * (n - 1));
    println!(
        "the 5-layer cluster's aggregates hid its /24s behind {} and {}",
        Dcn::server_aggregate(1),
        Dcn::loopback_aggregate(1)
    );
    let hist = report.rib.protocol_histogram();
    println!("route protocol histogram: {hist:?}");
}
