//! Quickstart: synthesize a FatTree, verify all-pair reachability with S2,
//! and print the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use s2::{S2Options, S2Verifier, VerificationRequest};
use s2_routing::NetworkModel;
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};

fn main() {
    // 1. Synthesize a k=4 FatTree running eBGP (every switch its own AS,
    //    every edge switch originating one server /24, ECMP enabled).
    let ft = generate(FatTreeParams::new(4));
    println!(
        "generated FatTree4: {} switches, {} links, {} server prefixes",
        ft.topology.node_count(),
        ft.topology.link_count(),
        ft.params.prefix_count()
    );

    // 2. Build the resolved network model (L3 adjacency inference + BGP
    //    session establishment). Misconfigured sessions would surface here
    //    as diagnostics, not errors.
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone())
        .expect("generated configurations are valid");
    println!(
        "model: {} BGP session endpoints, {} diagnostics",
        model.session_count(),
        model.session_diagnostics.len()
    );

    // 3. Ask the all-pair reachability question: every edge switch must
    //    deliver every other edge switch's server prefix.
    let mut endpoints = Vec::new();
    for p in 0..4 {
        for e in 0..2 {
            endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
        }
    }
    let request = VerificationRequest::all_pair_reachability(
        endpoints,
        "10.0.0.0/8".parse().expect("valid prefix"),
    );

    // 4. Verify with 2 workers and 4 prefix shards.
    let opts = S2Options {
        workers: 2,
        shards: 4,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &opts).expect("model partitions cleanly");
    let report = verifier.verify(&request).expect("verification completes");
    verifier.shutdown();

    // 5. Inspect the outcome.
    println!("\n{}", report.summary());
    assert!(report.all_clear(), "a healthy FatTree must verify clean");
    println!("\nall-pair reachability HOLDS ({} pairs)", report.dpv.reachable_pairs);
    println!(
        "control plane: {} BGP rounds over {} shards, {} routes computed",
        report.cp.bgp_rounds,
        report.shards,
        report.total_routes()
    );
    println!(
        "cross-worker traffic: {} messages, {} bytes",
        report.cp.messages, report.cp.bytes
    );
}
