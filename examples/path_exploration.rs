//! Path exploration (the paper's Fig. 11): checking a single cross-pod
//! pair on FatTree4 triggers symbolic forwarding along *every* ECMP
//! up-down path — which is what lets the verifier catch path-specific
//! anomalies like forwarding valleys.
//!
//! ```text
//! cargo run --example path_exploration
//! ```

use s2_baselines::{simulate_control_plane, MonolithicOptions};
use s2_dataplane::{forward, Fib, ForwardOptions, NodePredicates, PacketSpace};
use s2_routing::NetworkModel;
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};

fn main() {
    let ft = generate(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).expect("valid model");
    let (rib, _) =
        simulate_control_plane(&model, &MonolithicOptions::default()).expect("converges");

    // Compile every node's predicates.
    let space = PacketSpace::new(0);
    let mut mgr = space.manager();
    let preds: Vec<NodePredicates> = model
        .topology
        .nodes()
        .map(|n| NodePredicates::compile(&model, n, &Fib::from_rib(rib.node(n)), &space, &mut mgr))
        .collect();

    // Single-pair query: pod0-edge0 -> pod3-edge1's prefix, with tracing.
    let src = ft.edge(0, 0);
    let dst = ft.edge(3, 1);
    let prefix = FatTree::server_prefix(3, 1);
    let inject = space.dst_in(&mut mgr, prefix);
    let opts = ForwardOptions {
        record_trace: true,
        ..Default::default()
    };
    let res = forward(
        &model.topology,
        &preds,
        &space,
        &mut mgr,
        vec![(src, inject)],
        &opts,
    );

    println!(
        "checking {} -> {} ({prefix}):\n",
        model.topology.name(src),
        model.topology.name(dst)
    );
    for (i, step) in res.trace.iter().enumerate() {
        println!(
            "  step {:>2}: hop {} {:>10} -> {}",
            i + 1,
            step.hops,
            model.topology.name(step.from),
            model.topology.name(step.to)
        );
    }

    let arrived = res.arrived_at(&mut mgr, src, dst);
    assert!(!arrived.is_false(), "destination must be reached");

    // Count distinct links per hop level — the ECMP fan-out of Fig. 11.
    let mut per_hop: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for s in &res.trace {
        *per_hop.entry(s.hops).or_insert(0) += 1;
    }
    println!("\nlinks traversed per hop: {per_hop:?}");
    println!(
        "the packet fans out over both aggregation switches and all four \
         cores, then converges on the destination — {} forwarding steps for \
         one \"single-pair\" query, which is why even single-pair checking \
         parallelizes across S2 workers (§5.8)",
        res.trace.len()
    );
}
