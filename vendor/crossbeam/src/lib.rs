//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of crossbeam it actually uses: unbounded MPMC
//! channels with blocking, non-blocking, and deadline-bounded receives.
//! Semantics mirror `crossbeam-channel`: a receive fails with
//! `Disconnected` only once every sender is gone *and* the queue is empty;
//! a send fails once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).unwrap();
            }
        }

        /// Receive bounded by a relative timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Receive bounded by an absolute deadline.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            // Queued values drain before disconnect surfaces.
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            t.join().unwrap();
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send("hello").unwrap();
            });
            assert_eq!(rx.recv(), Ok("hello"));
            t.join().unwrap();
        }
    }
}
