//! Offline stand-in for `serde`.
//!
//! S2 only *derives* the traits on model types (for downstream users);
//! nothing in the workspace serializes through serde, so empty marker
//! traits plus no-op derives satisfy every use site.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeTrait {}
