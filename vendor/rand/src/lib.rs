//! Offline stand-in for the `rand` crate.
//!
//! S2 uses randomness only for seeded, reproducible shuffles (partition
//! and shard assignment). A splitmix64/xoshiro-style generator behind the
//! same `SeedableRng` + `SliceRandom` API covers that; the streams differ
//! from upstream rand's, which is fine — every fixed seed still yields a
//! deterministic shuffle, and any permutation is a valid assignment.

/// Core RNG interface: uniform 64-bit output plus a bounded sampler.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[0, bound)` via Lemire-style rejection.
    fn gen_bound(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Construction of RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (xorshift* core seeded by splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so that small seeds don't yield small states.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — tiny, fast, good enough for shuffles.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly with `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_bound(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_sensitive() {
        let orig: Vec<u32> = (0..50).collect();
        let mut x = orig.clone();
        x.shuffle(&mut StdRng::seed_from_u64(1));
        let mut y = orig.clone();
        y.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(x, y, "same seed, same permutation");
        let mut z = orig.clone();
        z.shuffle(&mut StdRng::seed_from_u64(2));
        assert_ne!(x, z, "different seed shuffles differently");
        let mut sorted = x.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle permutes, never drops");
    }

    #[test]
    fn gen_bound_is_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for bound in [1u64, 2, 7, 100] {
            for _ in 0..100 {
                assert!(r.gen_bound(bound) < bound);
            }
        }
    }
}
