//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the S2 workspace uses: an immutable, cheaply
//! cloneable [`Bytes`] view (shared `Arc<[u8]>` plus a window), a growable
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor traits with the
//! big-endian accessors the wire codec relies on.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `n` bytes, advancing self.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes out of bounds");
        let out = self.slice(..n);
        self.start += n;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Bytes written so far (not yet consumed by `Buf` reads).
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes into an immutable buffer (unread portion).
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.read..].to_vec())
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

/// Sequential big-endian reads over a byte source.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.read += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Sequential big-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(513);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0123_4567_89ab_cdef);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 513);
        assert_eq!(bytes.get_u32(), 0xdead_beef);
        assert_eq!(bytes.get_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_copy_to_bytes() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut c = s.clone();
        let head = c.copy_to_bytes(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&c[..], &[4]);
        assert_eq!(b.len(), 6, "parent view untouched");
    }

    #[test]
    fn equality_ignores_window_offsets() {
        let a = Bytes::from(vec![9, 9, 1, 2]).slice(2..);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
    }
}
