//! Offline vendored stand-in for [loom](https://github.com/tokio-rs/loom).
//!
//! This is not the upstream crate: the build environment has no network
//! access, so this reimplements the subset of loom's API the workspace
//! uses, with the same checking discipline on a simpler model:
//!
//! * [`model`] runs the closure repeatedly, exploring **every** schedule
//!   of the spawned threads by depth-first search over scheduling
//!   choices. Execution is fully serialized — exactly one model thread
//!   runs at a time — and a *schedule point* is inserted before every
//!   synchronization operation (mutex acquire/release, atomic access,
//!   spawn, join, yield). At each point the scheduler branches over all
//!   runnable threads.
//! * The memory model is **sequential consistency**: weaker orderings
//!   are accepted and upgraded. This explores fewer behaviours than real
//!   loom on `Relaxed`/`Acquire`/`Release` code, but every interleaving
//!   of the synchronization operations themselves is still exhaustively
//!   explored, which is what the workspace's credit-accounting model
//!   checks need (the production code guards all shared state with a
//!   mutex; the checked invariants are about operation *order*, not
//!   fence strength).
//! * Deadlocks (no runnable thread while some are blocked) and any
//!   panic inside the model (assertion failures included) abort the
//!   exploration and re-panic from [`model`] with the failing schedule,
//!   so `cargo test` reports them as ordinary test failures.
//!
//! Bounds: at most [`MAX_EXECUTIONS`] schedules and [`MAX_STEPS`]
//! schedule points per execution; exceeding either is a hard error
//! (never a silent truncation), keeping "the model check passed"
//! honest.

use std::cell::{RefCell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard cap on explored schedules per [`model`] call.
pub const MAX_EXECUTIONS: usize = 500_000;
/// Hard cap on schedule points within one execution.
pub const MAX_STEPS: usize = 1_000_000;

/// Panic payload used to unwind model threads when an execution is
/// abandoned (failure elsewhere); never surfaced to the user.
const ABANDONED: &str = "__loom_execution_abandoned__";

// ---------------------------------------------------------------------
// scheduler core
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Runnable,
    BlockedMutex(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    /// Index into the runnable set that was taken.
    chosen: usize,
    /// Size of the runnable set at this point (branching factor).
    alternatives: usize,
}

struct SchedState {
    phases: Vec<Phase>,
    /// The thread currently allowed to run.
    current: usize,
    /// Lock state per registered model mutex.
    mutex_locked: Vec<bool>,
    /// Choices made so far in this execution (replayed prefix + new).
    schedule: Vec<Choice>,
    /// Next decision index (into `prefix` while replaying).
    pos: usize,
    /// The decision prefix to replay for this execution.
    prefix: Vec<usize>,
    failure: Option<String>,
    abandoned: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    steps: usize,
}

struct Execution {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Execution {
    fn new(prefix: Vec<usize>) -> Execution {
        Execution {
            state: StdMutex::new(SchedState {
                phases: vec![Phase::Runnable],
                current: 0,
                mutex_locked: Vec::new(),
                schedule: Vec::new(),
                pos: 0,
                prefix,
                failure: None,
                abandoned: false,
                os_handles: Vec::new(),
                steps: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run. Requires that a decision is due
    /// (the caller is at a schedule point or is blocking/finishing).
    fn schedule_next(&self, st: &mut SchedState) {
        let runnable: Vec<usize> = st
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Phase::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.phases.iter().all(|p| *p == Phase::Finished) {
                self.cv.notify_all();
                return;
            }
            st.failure = Some(format!(
                "deadlock: no runnable thread (phases: {:?})",
                st.phases
            ));
            st.abandoned = true;
            self.cv.notify_all();
            return;
        }
        let idx = if st.pos < st.prefix.len() {
            let i = st.prefix[st.pos];
            assert!(
                i < runnable.len(),
                "loom internal error: schedule replay diverged (nondeterministic model body?)"
            );
            i
        } else {
            0
        };
        st.schedule.push(Choice {
            chosen: idx,
            alternatives: runnable.len(),
        });
        st.pos += 1;
        st.current = runnable[idx];
        self.cv.notify_all();
    }

    /// A schedule point: branch over every runnable thread, then wait
    /// until this thread is scheduled again.
    fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.abandoned {
            drop(st);
            panic!("{ABANDONED}");
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            st.failure = Some("execution exceeded the schedule-point bound (livelock?)".into());
            st.abandoned = true;
            self.cv.notify_all();
            drop(st);
            panic!("{ABANDONED}");
        }
        self.schedule_next(&mut st);
        while st.current != me && !st.abandoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abandoned {
            drop(st);
            panic!("{ABANDONED}");
        }
    }

    /// Blocks the calling thread (whose phase the caller has already set
    /// to a non-runnable state) until it is scheduled again.
    fn block_current<'a>(
        &'a self,
        me: usize,
        mut st: StdMutexGuard<'a, SchedState>,
    ) -> StdMutexGuard<'a, SchedState> {
        self.schedule_next(&mut st);
        while st.current != me && !st.abandoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abandoned {
            drop(st);
            panic!("{ABANDONED}");
        }
        st
    }

    /// Marks `me` finished, wakes joiners, hands off the schedule.
    fn finish_thread(&self, me: usize) {
        let mut st = self.lock_state();
        st.phases[me] = Phase::Finished;
        for p in st.phases.iter_mut() {
            if *p == Phase::BlockedJoin(me) {
                *p = Phase::Runnable;
            }
        }
        self.schedule_next(&mut st);
    }

    /// Records a model failure (panic payload from a model thread).
    fn record_failure(&self, msg: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abandoned = true;
        self.cv.notify_all();
    }
}

thread_local! {
    static CTX: RefCell<Option<(StdArc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (StdArc<Execution>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

fn set_ctx(exec: StdArc<Execution>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, id)));
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> Option<String> {
    let msg = if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    };
    if msg == ABANDONED {
        None
    } else {
        Some(msg)
    }
}

/// Runs a model thread body under the harness: waits to be scheduled,
/// runs `f`, converts panics into model failures, and finishes.
fn run_model_thread<T>(
    exec: &StdArc<Execution>,
    id: usize,
    f: impl FnOnce() -> T,
    slot: &StdMutex<Option<T>>,
) {
    set_ctx(exec.clone(), id);
    {
        let mut st = exec.lock_state();
        while st.current != id && !st.abandoned {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abandoned {
            drop(st);
            exec.finish_thread(id);
            return;
        }
    }
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        }
        Err(p) => {
            if let Some(msg) = payload_to_string(p) {
                exec.record_failure(msg);
            }
        }
    }
    exec.finish_thread(id);
}

fn next_prefix(schedule: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..schedule.len()).rev() {
        if schedule[i].chosen + 1 < schedule[i].alternatives {
            let mut p: Vec<usize> = schedule[..i].iter().map(|c| c.chosen).collect();
            p.push(schedule[i].chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Exhaustively explores every interleaving of the model closure's
/// threads. Panics (test failure) on any assertion failure, panic, or
/// deadlock in any schedule, reporting the failing decision sequence.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom: exceeded {MAX_EXECUTIONS} explored schedules; shrink the model"
        );
        let exec = StdArc::new(Execution::new(prefix.clone()));
        let root = {
            let exec = exec.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let slot = StdMutex::new(None::<()>);
                run_model_thread(&exec, 0, || f(), &slot);
            })
        };
        let (schedule, failure, handles) = {
            let mut st = exec.lock_state();
            while !st.phases.iter().all(|p| *p == Phase::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            (
                std::mem::take(&mut st.schedule),
                st.failure.clone(),
                std::mem::take(&mut st.os_handles),
            )
        };
        let _ = root.join();
        for h in handles {
            let _ = h.join();
        }
        if let Some(msg) = failure {
            let decisions: Vec<usize> = schedule.iter().map(|c| c.chosen).collect();
            panic!(
                "loom model failure after {executions} schedule(s): {msg}\nfailing schedule: {decisions:?}"
            );
        }
        match next_prefix(&schedule) {
            Some(p) => prefix = p,
            None => break,
        }
    }
}

/// Explicit schedule point (API-compatible with `loom::thread::yield_now`
/// callers that want extra granularity).
fn explicit_yield() {
    let (exec, me) = ctx();
    exec.yield_point(me);
}

// ---------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------

/// Model-aware replacement for `std::thread` (spawn/join/yield_now).
pub mod thread {
    use super::*;

    /// Handle to a model thread; `join` is a schedule point.
    pub struct JoinHandle<T> {
        id: usize,
        slot: StdArc<StdMutex<Option<T>>>,
    }

    /// Spawns a model thread. The closure runs only when the scheduler
    /// picks it; every interleaving with its siblings is explored.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) = ctx();
        let id = {
            let mut st = exec.lock_state();
            st.phases.push(Phase::Runnable);
            st.phases.len() - 1
        };
        let slot = StdArc::new(StdMutex::new(None::<T>));
        let os_handle = {
            let exec = exec.clone();
            let slot = slot.clone();
            std::thread::spawn(move || run_model_thread(&exec.clone(), id, f, &slot))
        };
        exec.lock_state().os_handles.push(os_handle);
        // Spawn is a schedule point: the child may be picked immediately.
        exec.yield_point(me);
        JoinHandle { id, slot }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish (blocking schedule point).
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = ctx();
            exec.yield_point(me);
            loop {
                let mut st = exec.lock_state();
                if st.abandoned {
                    drop(st);
                    panic!("{ABANDONED}");
                }
                if st.phases[self.id] == Phase::Finished {
                    drop(st);
                    break;
                }
                st.phases[me] = Phase::BlockedJoin(self.id);
                let _st = exec.block_current(me, st);
            }
            match self
                .slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                Some(v) => Ok(v),
                // The thread panicked; the execution is being abandoned
                // and the failure re-surfaces from `model` itself.
                None => panic!("{ABANDONED}"),
            }
        }
    }

    /// Explicit schedule point.
    pub fn yield_now() {
        super::explicit_yield();
    }
}

// ---------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------

/// Model-aware replacements for `std::sync` primitives.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    /// Model mutex: acquire and release are schedule points; contention
    /// blocks the thread in the model scheduler.
    pub struct Mutex<T> {
        /// Index into the execution's lock table; assigned lazily on
        /// first use so mutexes can be created before `model` threads.
        id: StdMutex<Option<usize>>,
        cell: UnsafeCell<T>,
    }

    // Safety: all access to `cell` is serialized by the model scheduler
    // (exactly one model thread runs at a time, and handoffs synchronize
    // through a std mutex), gated by the model lock state.
    unsafe impl<T: Send> Send for Mutex<T> {}
    unsafe impl<T: Send> Sync for Mutex<T> {}

    /// Guard for [`Mutex`]; releases (a schedule point) on drop.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        lock_id: usize,
    }

    impl<T> Mutex<T> {
        /// Creates a model mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: StdMutex::new(None),
                cell: UnsafeCell::new(value),
            }
        }

        fn lock_id(&self, st: &mut SchedState) -> usize {
            let mut id = self.id.lock().unwrap_or_else(|e| e.into_inner());
            *id.get_or_insert_with(|| {
                st.mutex_locked.push(false);
                st.mutex_locked.len() - 1
            })
        }

        /// Acquires the mutex (schedule point; blocks under contention).
        /// Returns `Result` for API compatibility; never `Err` here.
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
            let (exec, me) = ctx();
            exec.yield_point(me);
            loop {
                let mut st = exec.lock_state();
                if st.abandoned {
                    drop(st);
                    panic!("{ABANDONED}");
                }
                let lock_id = self.lock_id(&mut st);
                if !st.mutex_locked[lock_id] {
                    st.mutex_locked[lock_id] = true;
                    drop(st);
                    return Ok(MutexGuard {
                        mutex: self,
                        lock_id,
                    });
                }
                st.phases[me] = Phase::BlockedMutex(lock_id);
                let _st = exec.block_current(me, st);
                // Re-contend: another thread may have re-acquired between
                // our wakeup and our turn.
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: guard proves exclusive model-level ownership.
            unsafe { &*self.mutex.cell.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: guard proves exclusive model-level ownership.
            unsafe { &mut *self.mutex.cell.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let (exec, me) = ctx();
            {
                let mut st = exec.lock_state();
                st.mutex_locked[self.lock_id] = false;
                for p in st.phases.iter_mut() {
                    if *p == Phase::BlockedMutex(self.lock_id) {
                        *p = Phase::Runnable;
                    }
                }
                exec.cv.notify_all();
            }
            // Release is a schedule point — unless this drop runs during
            // an unwind (abandoned execution), where a second panic
            // would abort the process.
            if !std::thread::panicking() {
                exec.yield_point(me);
            }
        }
    }

    /// Model atomics: every access is a schedule point; all orderings
    /// are upgraded to sequential consistency (see crate docs).
    pub mod atomic {
        use super::super::{ctx, UnsafeCell};

        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $ty:ty) => {
                /// Model atomic (sequentially consistent; every access
                /// is a schedule point).
                pub struct $name {
                    cell: UnsafeCell<$ty>,
                }

                // Safety: access is serialized by the model scheduler
                // with handoffs through a std mutex (see Mutex above).
                unsafe impl Send for $name {}
                unsafe impl Sync for $name {}

                impl $name {
                    /// Creates the atomic.
                    pub fn new(v: $ty) -> Self {
                        Self {
                            cell: UnsafeCell::new(v),
                        }
                    }

                    fn yield_op(&self) {
                        let (exec, me) = ctx();
                        exec.yield_point(me);
                    }

                    /// Atomic load (schedule point).
                    pub fn load(&self, _o: Ordering) -> $ty {
                        self.yield_op();
                        unsafe { *self.cell.get() }
                    }

                    /// Atomic store (schedule point).
                    pub fn store(&self, v: $ty, _o: Ordering) {
                        self.yield_op();
                        unsafe { *self.cell.get() = v }
                    }

                    /// Atomic fetch-add (schedule point).
                    pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                        self.yield_op();
                        unsafe {
                            let old = *self.cell.get();
                            *self.cell.get() = old.wrapping_add(v);
                            old
                        }
                    }

                    /// Atomic swap (schedule point).
                    pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                        self.yield_op();
                        unsafe {
                            let old = *self.cell.get();
                            *self.cell.get() = v;
                            old
                        }
                    }

                    /// Atomic compare-exchange (schedule point).
                    pub fn compare_exchange(
                        &self,
                        expect: $ty,
                        new: $ty,
                        _ok: Ordering,
                        _err: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.yield_op();
                        unsafe {
                            let old = *self.cell.get();
                            if old == expect {
                                *self.cell.get() = new;
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        }
                    }
                }
            };
        }

        model_atomic!(AtomicU32, u32);
        model_atomic!(AtomicU64, u64);
        model_atomic!(AtomicUsize, usize);

        /// Model atomic bool (sequentially consistent).
        pub struct AtomicBool {
            cell: UnsafeCell<bool>,
        }

        // Safety: as above — scheduler-serialized access.
        unsafe impl Send for AtomicBool {}
        unsafe impl Sync for AtomicBool {}

        impl AtomicBool {
            /// Creates the atomic.
            pub fn new(v: bool) -> Self {
                Self {
                    cell: UnsafeCell::new(v),
                }
            }

            fn yield_op(&self) {
                let (exec, me) = ctx();
                exec.yield_point(me);
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _o: Ordering) -> bool {
                self.yield_op();
                unsafe { *self.cell.get() }
            }

            /// Atomic store (schedule point).
            pub fn store(&self, v: bool, _o: Ordering) {
                self.yield_op();
                unsafe { *self.cell.get() = v }
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, v: bool, _o: Ordering) -> bool {
                self.yield_op();
                unsafe {
                    let old = *self.cell.get();
                    *self.cell.get() = v;
                    old
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn mutex_counter_never_loses_updates() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        let mut g = n.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
    }

    #[test]
    fn racy_read_modify_write_is_caught() {
        // A non-atomic increment built from load + store must be caught
        // losing an update in SOME schedule.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "the lost-update schedule must be found");
    }

    #[test]
    fn interleavings_are_actually_explored() {
        use std::sync::atomic::{AtomicUsize as StdAtomic, Ordering as StdOrdering};
        // Count distinct outcomes of a 2-thread race on who writes last.
        let saw = std::sync::Arc::new(StdAtomic::new(0));
        let saw2 = saw.clone();
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let h: Vec<_> = (1..=2)
                .map(|who| {
                    let n = n.clone();
                    super::thread::spawn(move || n.store(who, Ordering::SeqCst))
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            saw2.fetch_or_bit(n.load(Ordering::SeqCst));
        });
        assert_eq!(saw.load(StdOrdering::SeqCst), 0b110, "both final states seen");
    }

    trait FetchOrBit {
        fn fetch_or_bit(&self, bit: usize);
    }
    impl FetchOrBit for std::sync::atomic::AtomicUsize {
        fn fetch_or_bit(&self, bit: usize) {
            self.fetch_or(1 << bit, std::sync::atomic::Ordering::SeqCst);
        }
    }
}
