//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but
//! never serializes through serde (the wire codec is hand-rolled), so the
//! derives expand to nothing. `attributes(serde)` is declared so any
//! future field attributes still parse.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
