//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! seeded random generation through `Strategy` combinators and the
//! `proptest!` macro. Differences from upstream: no shrinking (a failing
//! case is reported as-is), fixed per-test seeds derived from the test
//! path (fully reproducible runs), and a smaller default case count.

use std::fmt;
use std::rc::Rc;

pub mod test_runner {
    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::*;

    /// Deterministic generator driving all strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6a09_e667_f3bc_c909,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// FNV-1a over a string — used to derive stable per-test seeds.
    pub fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy {
                sample: Rc::new(move |rng| inner.sample_value(rng)),
            }
        }

        /// Builds recursive structures: `f` lifts a strategy for depth-k
        /// values to depth-(k+1); leaves are drawn from `self`. `_size`
        /// and `_branch` (upstream's expected node count and branching
        /// factor) are ignored — depth alone bounds the tree here.
        fn prop_recursive<F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur);
                let leaf = leaf.clone();
                cur = BoxedStrategy {
                    sample: Rc::new(move |rng| {
                        // 1-in-4 chance of stopping early keeps generated
                        // trees varied in depth, as upstream does.
                        if rng.below(4) == 0 {
                            leaf.sample_value(rng)
                        } else {
                            deeper.sample_value(rng)
                        }
                    }),
                };
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sample: Rc::clone(&self.sample),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Uniform choice between the arms of `prop_oneof!`.
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::strategy::TestRng;

    /// A deferred index into a collection whose length is unknown at
    /// generation time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto `[0, len)`; panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates collapse, so bound the draw count in case the
            // element domain is smaller than the requested size.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.sample_value(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    // Upstream's prelude re-exports the crate root as `prop`, enabling
    // paths like `prop::sample::Index`.
    pub use crate as prop;
}

/// Runs each contained `fn` as a property: every argument is drawn from
/// its strategy for each of `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __seed = $crate::strategy::fnv(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::strategy::TestRng::new(
                        __seed ^ u64::from(__case).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion — plain `assert!` here (no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion — plain `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::strategy::TestRng::new(1);
        for _ in 0..200 {
            let v = (3u32..17).sample_value(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=255).sample_value(&mut rng);
            let _ = w; // full domain: nothing to bound
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::strategy::TestRng::new(2);
        for _ in 0..50 {
            let v = crate::collection::vec(any::<u32>(), 2..5).sample_value(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            let s = crate::collection::btree_set(any::<u64>(), 3..4).sample_value(&mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: bindings, maps, oneof, and Index all work.
        #[test]
        fn macro_end_to_end(
            x in (0u16..10).prop_map(|v| v * 2),
            pick in prop_oneof![0u32..1, 5u32..6],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x % 2 == 0 && x < 20);
            prop_assert!(pick == 0 || pick == 5);
            prop_assert!(idx.index(7) < 7);
        }
    }
}
