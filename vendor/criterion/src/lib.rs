//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench targets compiling and runnable without the real
//! harness: `cargo bench` executes each benchmark body once and prints
//! its wall-clock time. No statistics, warm-up, or report output.

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from discarding `value` or the work behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepted as a benchmark name: plain strings or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Runs one benchmark body.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Times a single execution of `routine` (upstream runs many).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `routine` once and prints the elapsed time.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let start = Instant::now();
        routine(&mut Bencher { _private: () });
        println!("{}/{label}: {:?}", self.name, start.elapsed());
        self
    }

    /// Runs `routine` once with `input` and prints the elapsed time.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_id();
        let start = Instant::now();
        routine(&mut Bencher { _private: () }, input);
        println!("{}/{label}: {:?}", self.name, start.elapsed());
        self
    }

    /// Ends the group (no report to flush here).
    pub fn finish(self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let start = Instant::now();
        routine(&mut Bencher { _private: () });
        println!("{label}: {:?}", start.elapsed());
        self
    }
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
