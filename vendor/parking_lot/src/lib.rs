//! Offline stand-in for `parking_lot`: wraps std's `Mutex`/`RwLock` with
//! parking_lot's panic-free (non-poisoning) API.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
